type align = Left | Right

let float_cell ?(decimals = 1) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let render ?align ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Repro_stats.Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let align =
    match align with
    | Some a ->
        if List.length a <> ncols then
          invalid_arg "Repro_stats.Table.render: align length mismatch"
        else a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    match List.nth align i with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"
