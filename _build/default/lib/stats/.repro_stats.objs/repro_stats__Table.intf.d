lib/stats/table.mli:
