lib/stats/chart.mli:
