lib/stats/chart.ml: Array Buffer Float Int List Printf String Table
