lib/stats/stats.mli:
