lib/stats/stats.ml: Array Float Int List Printf
