lib/stats/table.ml: Array Float Int List Printf String
