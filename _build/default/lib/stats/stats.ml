let require_nonempty name = function
  | [] -> invalid_arg (Printf.sprintf "Repro_stats.Stats.%s: empty list" name)
  | xs -> xs

let mean xs =
  let xs = require_nonempty "mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_arr xs =
  if Array.length xs = 0 then invalid_arg "Repro_stats.Stats.mean_arr: empty array";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let xs = require_nonempty "stddev" xs in
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
  sqrt var

let sorted xs = List.sort Float.compare xs

let median xs =
  let xs = sorted (require_nonempty "median" xs) in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else 0.5 *. (arr.((n / 2) - 1) +. arr.(n / 2))

let minimum xs = List.fold_left Float.min infinity (require_nonempty "minimum" xs)
let maximum xs = List.fold_left Float.max neg_infinity (require_nonempty "maximum" xs)

let percentile q xs =
  if q < 0. || q > 100. then invalid_arg "Repro_stats.Stats.percentile: q outside [0,100]";
  let arr = Array.of_list (sorted (require_nonempty "percentile" xs)) in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let abs_pct_error ~reference estimate =
  if reference = 0. then invalid_arg "Repro_stats.Stats.abs_pct_error: zero reference";
  100. *. Float.abs (estimate -. reference) /. Float.abs reference

let mean_abs_pct_error ~reference estimates =
  if List.length reference <> List.length estimates then
    invalid_arg "Repro_stats.Stats.mean_abs_pct_error: length mismatch";
  mean (List.map2 (fun r e -> abs_pct_error ~reference:r e) reference estimates)

type accumulator = {
  mutable n : int;
  mutable sum : float;
  mutable max_v : float;
  mutable min_v : float;
}

let accumulator () = { n = 0; sum = 0.; max_v = neg_infinity; min_v = infinity }

let add acc x =
  acc.n <- acc.n + 1;
  acc.sum <- acc.sum +. x;
  if x > acc.max_v then acc.max_v <- x;
  if x < acc.min_v then acc.min_v <- x

let count acc = acc.n

let acc_mean acc =
  if acc.n = 0 then invalid_arg "Repro_stats.Stats.acc_mean: empty accumulator";
  acc.sum /. float_of_int acc.n

let acc_max acc = acc.max_v
let acc_min acc = acc.min_v
