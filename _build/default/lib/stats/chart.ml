let grouped_bars ?(width = 50) ~labels ~series () =
  let nlabels = List.length labels in
  List.iter
    (fun (name, values) ->
      if Array.length values <> nlabels then
        invalid_arg
          (Printf.sprintf "Repro_stats.Chart.grouped_bars: series %S length mismatch" name))
    series;
  let max_value =
    List.fold_left
      (fun acc (_, values) -> Array.fold_left Float.max acc values)
      0. series
  in
  let max_value = if max_value <= 0. then 1. else max_value in
  let name_width =
    List.fold_left (fun acc (name, _) -> Int.max acc (String.length name)) 0 series
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun li label ->
      Buffer.add_string buf (Printf.sprintf "%s\n" label);
      List.iter
        (fun (name, values) ->
          let v = values.(li) in
          let cells =
            if Float.is_nan v then 0
            else int_of_float (Float.round (v /. max_value *. float_of_int width))
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s %s\n" name_width name (String.make cells '#')
               (Table.float_cell ~decimals:2 v)))
        series)
    labels;
  Buffer.contents buf

let lines ?(width = 60) ?(height = 20) ~x_label ~y_label ~xs ~series () =
  if Array.length xs = 0 then invalid_arg "Repro_stats.Chart.lines: no x values";
  List.iter
    (fun (name, ys) ->
      if Array.length ys <> Array.length xs then
        invalid_arg (Printf.sprintf "Repro_stats.Chart.lines: series %S length mismatch" name))
    series;
  let y_max =
    List.fold_left (fun acc (_, ys) -> Array.fold_left Float.max acc ys) 0. series
  in
  let y_max = if y_max <= 0. then 1. else y_max in
  let x_min = xs.(0) and x_max = xs.(Array.length xs - 1) in
  let x_span = if x_max = x_min then 1. else x_max -. x_min in
  let grid = Array.make_matrix height width ' ' in
  let glyphs = [| '*'; '+'; 'o'; 'x'; '@'; '%'; '&'; '~' |] in
  List.iteri
    (fun si (_, ys) ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      Array.iteri
        (fun i y ->
          if not (Float.is_nan y) then begin
            let col =
              int_of_float
                (Float.round ((xs.(i) -. x_min) /. x_span *. float_of_int (width - 1)))
            in
            let row =
              height - 1
              - int_of_float (Float.round (y /. y_max *. float_of_int (height - 1)))
            in
            let row = Int.max 0 (Int.min (height - 1) row) in
            grid.(row).(col) <- glyph
          end)
        ys)
    series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "%s (max %.1f)\n" y_label y_max);
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("  +" ^ String.make width '-' ^ "> " ^ x_label ^ "\n");
  List.iteri
    (fun si (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "    %c = %s\n" glyphs.(si mod Array.length glyphs) name))
    series;
  Buffer.contents buf
