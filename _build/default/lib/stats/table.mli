(** Plain-text table rendering for the experiment harness output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with a separator line under the
    header; columns are padded to the widest cell.  [align] defaults to
    [Left] for the first column and [Right] for the rest (the usual shape of
    a results table).  @raise Invalid_argument if a row's width differs from
    the header's. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting, [nan] rendered as ["-"]; 1 decimal by default. *)
