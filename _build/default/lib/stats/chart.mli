(** ASCII charts used to render the paper's figures in the terminal. *)

val grouped_bars :
  ?width:int ->
  labels:string list ->
  series:(string * float array) list ->
  unit ->
  string
(** Figure-5 style grouped bar chart: one group per label (application), one
    bar per series (estimation method), scaled to the maximum value.
    @raise Invalid_argument if a series length differs from the label
    count. *)

val lines :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  xs:float array ->
  series:(string * float array) list ->
  unit ->
  string
(** Figure-6 style multi-series plot on a character grid, one glyph per
    series.  @raise Invalid_argument on a length mismatch or empty data. *)
