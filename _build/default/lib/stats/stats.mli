(** Descriptive statistics for the evaluation harness. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val mean_arr : float array -> float

val stddev : float list -> float
(** Population standard deviation.  @raise Invalid_argument on empty. *)

val median : float list -> float
(** @raise Invalid_argument on empty. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile q xs] with [q] in [\[0,100\]], linear interpolation.
    @raise Invalid_argument on empty list or out-of-range [q]. *)

val abs_pct_error : reference:float -> float -> float
(** [100 * |estimate - reference| / reference] — the paper's inaccuracy
    metric ("mean absolute difference ... in percent").
    @raise Invalid_argument if [reference] is zero. *)

val mean_abs_pct_error : reference:float list -> float list -> float
(** Mean of {!abs_pct_error} over paired lists.
    @raise Invalid_argument on a length mismatch or empty lists. *)

type accumulator
(** Streaming mean/min/max/count accumulator. *)

val accumulator : unit -> accumulator
val add : accumulator -> float -> unit
val count : accumulator -> int
val acc_mean : accumulator -> float
(** @raise Invalid_argument when nothing was added. *)

val acc_max : accumulator -> float
val acc_min : accumulator -> float
