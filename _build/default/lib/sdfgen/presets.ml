let ring ~name taus =
  let n = Array.length taus in
  if n < 2 then invalid_arg "Sdfgen.Presets.ring: need at least two actors";
  let actors = Array.mapi (fun i tau -> (Printf.sprintf "%s%d" name i, tau)) taus in
  let channels =
    Array.init n (fun i -> (i, (i + 1) mod n, 1, 1, if i = n - 1 then 1 else 0))
  in
  Sdf.Graph.create ~name ~actors ~channels

let pipeline ~name ?(frames_in_flight = 1) taus =
  let n = Array.length taus in
  if n < 2 then invalid_arg "Sdfgen.Presets.pipeline: need at least two actors";
  if frames_in_flight < 1 then invalid_arg "Sdfgen.Presets.pipeline: frames_in_flight < 1";
  let actors = Array.mapi (fun i tau -> (Printf.sprintf "%s%d" name i, tau)) taus in
  let channels =
    Array.init n (fun i ->
        (i, (i + 1) mod n, 1, 1, if i = n - 1 then frames_in_flight else 0))
  in
  Sdf.Graph.create ~name ~actors ~channels

let scaled scale t = t *. scale

let h263_decoder ?(scale = 1.) () =
  let s = scaled scale in
  (* One iteration = one frame; IQ/IDCT run per 8x8 block (99 per QCIF
     frame), VLD and MC run per frame. *)
  Sdf.Graph.create ~name:"H263"
    ~actors:
      [| ("vld", s 120.); ("iq", s 4.); ("idct", s 6.); ("mc", s 280.) |]
    ~channels:
      [|
        (0, 1, 99, 1, 0);  (* vld emits 99 blocks *)
        (1, 2, 1, 1, 0);
        (2, 3, 1, 99, 0);  (* mc gathers the frame *)
        (3, 0, 1, 1, 2);  (* double-buffered reference frame *)
      |]

let mp3_decoder ?(scale = 1.) () =
  let s = scaled scale in
  (* One iteration = one frame of two granules; IMDCT per subband batch. *)
  Sdf.Graph.create ~name:"MP3"
    ~actors:
      [|
        ("huff", s 60.); ("requant", s 40.); ("stereo", s 30.);
        ("imdct", s 18.); ("synth", s 55.);
      |]
    ~channels:
      [|
        (0, 1, 1, 1, 0);
        (1, 2, 1, 1, 0);
        (2, 3, 4, 1, 0);  (* four subband batches per granule pair *)
        (3, 4, 1, 4, 0);
        (4, 0, 1, 1, 2);
      |]

let jpeg_decoder ?(scale = 1.) () =
  let s = scaled scale in
  Sdf.Graph.create ~name:"JPEG"
    ~actors:[| ("parse", s 90.); ("jidct", s 25.); ("colour", s 140.) |]
    ~channels:
      [|
        (0, 1, 6, 1, 0);  (* six blocks per MCU *)
        (1, 2, 1, 6, 0);
        (2, 0, 1, 1, 1);
      |]

let media_set ?scale () =
  [| h263_decoder ?scale (); mp3_decoder ?scale (); jpeg_decoder ?scale () |]
