lib/sdfgen/presets.mli: Sdf
