lib/sdfgen/presets.ml: Array Printf Sdf
