lib/sdfgen/rng.ml: Array Int64
