lib/sdfgen/generator.ml: Array Char Fun List Printf Rng Sdf String
