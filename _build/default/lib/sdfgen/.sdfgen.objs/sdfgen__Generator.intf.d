lib/sdfgen/generator.mli: Rng Sdf
