lib/sdfgen/rng.mli:
