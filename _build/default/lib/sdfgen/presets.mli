(** Hand-shaped application graphs mimicking the media workloads the paper's
    title targets.  Execution times are parameters so the same shapes serve
    tests, examples and benchmarks at different scales; every preset is
    strongly connected, consistent and live by construction. *)

val ring : name:string -> float array -> Sdf.Graph.t
(** Single-rate cycle through the given actors, one initial token closing
    it: period = sum of execution times.
    @raise Invalid_argument on fewer than two actors. *)

val pipeline : name:string -> ?frames_in_flight:int -> float array -> Sdf.Graph.t
(** Linear chain with a feedback edge carrying [frames_in_flight] tokens
    (default [1] — no overlap).  With enough frames in flight the period is
    the bottleneck stage.  @raise Invalid_argument on fewer than two
    actors or [frames_in_flight < 1]. *)

val h263_decoder : ?scale:float -> unit -> Sdf.Graph.t
(** A QCIF H.263-style decoder shape (Stuijk et al.'s classic benchmark):
    VLD -> IQ (99 blocks per frame) -> IDCT -> MC with a frame feedback.
    Times in microsecond-ish units, multiplied by [scale] (default 1). *)

val mp3_decoder : ?scale:float -> unit -> Sdf.Graph.t
(** An MP3-style decoder: Huffman (2 granules per frame) -> requantise ->
    stereo -> IMDCT -> synthesis, frame feedback. *)

val jpeg_decoder : ?scale:float -> unit -> Sdf.Graph.t
(** A JPEG-style still decoder: parse -> (6 MCU blocks) IDCT -> colour,
    image feedback. *)

val media_set : ?scale:float -> unit -> Sdf.Graph.t array
(** The three decoders above — a ready-made multi-featured media device
    workload. *)
