(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    The whole evaluation pipeline must be reproducible from a single seed —
    graphs, rates, execution times and simulation tie-breaks all draw from
    explicitly threaded generator states rather than global mutable state. *)

type t

val create : int -> t
(** Generator seeded with the given integer. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on an empty array. *)
