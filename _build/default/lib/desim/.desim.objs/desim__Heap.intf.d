lib/desim/heap.mli:
