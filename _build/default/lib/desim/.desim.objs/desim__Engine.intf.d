lib/desim/engine.mli: Appstate Sdf
