lib/desim/vcd.ml: Array Buffer Char Engine Float Fun Hashtbl List Printf Sdf String Trace
