lib/desim/heap.ml: Array Int
