lib/desim/trace.ml: Array Buffer Engine Float Hashtbl List Printf
