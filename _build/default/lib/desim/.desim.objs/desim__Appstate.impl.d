lib/desim/appstate.ml: Array Float List Printf Sdf
