lib/desim/preemptive.ml: Appstate Array Engine Float Fun Heap Int List Sdf
