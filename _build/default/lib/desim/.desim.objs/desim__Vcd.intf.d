lib/desim/vcd.mli: Engine Trace
