lib/desim/engine.ml: Appstate Array Heap List Printf Queue Sdf
