lib/desim/appstate.mli: Sdf
