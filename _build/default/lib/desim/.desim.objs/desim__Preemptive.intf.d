lib/desim/preemptive.mli: Engine
