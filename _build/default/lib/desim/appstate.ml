type app = { graph : Sdf.Graph.t; mapping : int array }

type result = {
  app_name : string;
  iterations : int;
  avg_period : float;
  max_period : float;
  min_period : float;
  busy_time : float array;
}

type t = {
  app : app;
  q : int array;
  in_idx : int list array;
  tokens : int array;
  fires : int array;
  busy : float array;
  mutable iterations : int;
  mutable last_completion : float;
  mutable kept_first : float;
  mutable kept_count : int;
  mutable max_gap : float;
  mutable min_gap : float;
}

let validate ~procs ~index (a : app) =
  let n = Sdf.Graph.num_actors a.graph in
  if Array.length a.mapping <> n then
    invalid_arg
      (Printf.sprintf "Desim: app %d mapping length %d <> %d actors" index
         (Array.length a.mapping) n);
  Array.iter
    (fun p ->
      if p < 0 || p >= procs then
        invalid_arg (Printf.sprintf "Desim: app %d maps to processor %d" index p))
    a.mapping

let make ~procs (a : app) =
  let g = a.graph in
  let n = Sdf.Graph.num_actors g in
  let in_idx = Array.make n [] in
  Array.iteri
    (fun ci (c : Sdf.Graph.channel) -> in_idx.(c.dst) <- ci :: in_idx.(c.dst))
    g.channels;
  {
    app = a;
    q = Sdf.Repetition.compute_exn g;
    in_idx;
    tokens = Array.map (fun (c : Sdf.Graph.channel) -> c.tokens) g.channels;
    fires = Array.make n 0;
    busy = Array.make procs 0.;
    iterations = 0;
    last_completion = nan;
    kept_first = nan;
    kept_count = 0;
    max_gap = nan;
    min_gap = nan;
  }

let tokens_enabled st actor =
  List.for_all
    (fun ci -> st.tokens.(ci) >= st.app.graph.channels.(ci).consume)
    st.in_idx.(actor)

let consume_inputs st actor =
  List.iter
    (fun ci -> st.tokens.(ci) <- st.tokens.(ci) - st.app.graph.channels.(ci).consume)
    st.in_idx.(actor)

let record_iteration st ~warmup time =
  st.iterations <- st.iterations + 1;
  if st.iterations > warmup then begin
    if st.kept_count = 0 then st.kept_first <- time
    else begin
      let gap = time -. st.last_completion in
      if Float.is_nan st.max_gap || gap > st.max_gap then st.max_gap <- gap;
      if Float.is_nan st.min_gap || gap < st.min_gap then st.min_gap <- gap
    end;
    st.kept_count <- st.kept_count + 1;
    st.last_completion <- time
  end
  else st.last_completion <- time

let finish_firing st ~warmup ~actor ~time =
  Array.iteri
    (fun ci (c : Sdf.Graph.channel) ->
      if c.src = actor then st.tokens.(ci) <- st.tokens.(ci) + c.produce)
    st.app.graph.channels;
  st.fires.(actor) <- st.fires.(actor) + 1;
  if actor = 0 && st.fires.(0) mod st.q.(0) = 0 then record_iteration st ~warmup time

let output_consumers st actor =
  Array.fold_right
    (fun (c : Sdf.Graph.channel) acc -> if c.src = actor then c.dst :: acc else acc)
    st.app.graph.channels []

let result st =
  let avg =
    if st.kept_count >= 2 then
      (st.last_completion -. st.kept_first) /. float_of_int (st.kept_count - 1)
    else nan
  in
  {
    app_name = st.app.graph.name;
    iterations = st.iterations;
    avg_period = avg;
    max_period = st.max_gap;
    min_period = st.min_gap;
    busy_time = st.busy;
  }
