(** Mutable binary min-heap keyed by [(time, sequence)].

    The sequence number makes extraction deterministic and FIFO among events
    scheduled for the same instant — essential for a reproducible simulator. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert with an automatically increasing sequence number. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event; among equal times, the one pushed
    first. *)

val peek_time : 'a t -> float option
val clear : 'a t -> unit
