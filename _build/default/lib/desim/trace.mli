(** Trace recording on top of {!Engine}: collect the event stream of a run
    and derive per-actor service statistics — measured waiting times, busy
    intervals and queue behaviour.  This is how the simulator's view of
    contention is compared against the analytical waiting times. *)

type record = {
  app : int;
  actor : int;
  proc : int;
  start_time : float;
  finish_time : float;
}

type t

val create : unit -> t

val on_event : t -> Engine.event -> unit
(** Feed to {!Engine.run}'s [on_event]; pairs [Start]/[Finish] events into
    {!record}s. *)

val records : t -> record list
(** Completed firings in finish order. *)

val num_records : t -> int

type service_stats = {
  firings : int;
  total_busy : float;
  mean_service : float;  (** Mean observed firing duration. *)
  mean_gap : float;
      (** Mean idle gap between consecutive services of this actor — [nan]
          with fewer than two firings. *)
}

val actor_stats : t -> app:int -> actor:int -> service_stats
(** @raise Not_found if the actor never completed a firing. *)

val proc_timeline : t -> proc:int -> record list
(** Firings executed on a processor, ordered by start time. *)

val to_csv : t -> string
(** One line per record: [app,actor,proc,start,finish]. *)

val static_order :
  t -> procs:int -> window:float * float -> (int * int) array array
(** The per-processor service order observed in the time window
    [\[from, until)]: the raw material for an {!Engine.Static_order}
    arbitration derived from a free-running (FCFS) execution.  Entries are
    [(app, actor)] in start-time order.
    @raise Invalid_argument if the window is empty. *)
