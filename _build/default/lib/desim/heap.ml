type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let dummy = h.data.(0) in
    let bigger = Array.make (Int.max 16 (2 * cap)) dummy in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end

let push h ~time payload =
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry else grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time

let clear h =
  h.size <- 0;
  h.next_seq <- 0
