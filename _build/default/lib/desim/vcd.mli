(** Value Change Dump (IEEE 1364) export of simulation traces.

    Every (application, actor) pair becomes a one-bit signal that is high
    while a firing executes; processors get a string signal naming the
    running actor.  The files open directly in GTKWave and friends, which is
    how one actually stares at contention. *)

val of_trace :
  Trace.t ->
  apps:Engine.app array ->
  procs:int ->
  ?timescale:string ->
  ?resolution:float ->
  unit ->
  string
(** Render the trace.  [resolution] (default [1.]) divides every timestamp
    (VCD wants integers; pick e.g. [0.01] for 2 decimal places of
    precision).  [timescale] defaults to ["1us"].
    @raise Invalid_argument if [resolution <= 0.]. *)

val write_file :
  string ->
  Trace.t ->
  apps:Engine.app array ->
  procs:int ->
  unit ->
  unit
