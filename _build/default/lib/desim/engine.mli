(** Discrete-event simulation of multiple SDF applications sharing
    processors — the reference ("measured") performance the paper compares
    its estimates against (their setup used POOSL).

    Semantics, as stated in the paper:
    - every actor is statically mapped on one processor;
    - processors are non-preemptive: a firing runs to completion;
    - arbitration is first-come-first-served among enabled firings, with no
      imposed static order;
    - an actor has at most one outstanding firing (no auto-concurrency) and
      joins its processor's queue the moment it becomes enabled.

    Because SDF enabledness is monotone (only an actor itself consumes from
    its input channels), contention delays firings but can never deadlock a
    set of individually live graphs. *)

type app = Appstate.app = {
  graph : Sdf.Graph.t;
  mapping : int array;  (** [mapping.(actor_id)] is the processor id. *)
}

type arbitration =
  | Fcfs
      (** First-come-first-served — the paper's setting: no imposed order,
          every actor executes "with least contention on their own". *)
  | Fixed_priority
      (** Non-preemptive static priority: among queued firings the lowest
          application index wins (ties broken by actor id).  Useful to study
          how unfair arbitration skews periods versus the FCFS model the
          analysis assumes. *)
  | Static_order of (int * int) array array
      (** [orders.(proc)] is a cyclic sequence of [(app, actor)] entries; the
          processor serves exactly that sequence, idling until the next
          scheduled firing becomes ready.  This is the arbitration the
          paper's related work ([2]) models — and, as the paper argues, it
          couples independent applications: a stalled entry blocks everyone
          mapped behind it.  A processor with an empty order serves nothing.
          @raise Invalid_argument (from {!run}) if an entry names an unknown
          application or actor, or an actor mapped elsewhere. *)

type event =
  | Start of { time : float; app : int; actor : int; proc : int }
  | Finish of { time : float; app : int; actor : int; proc : int }

type result = Appstate.result = {
  app_name : string;
  iterations : int;  (** Completed graph iterations within the horizon. *)
  avg_period : float;
      (** Mean time per iteration after warm-up; [nan] if fewer than two
          iterations completed after warm-up. *)
  max_period : float;  (** Worst observed inter-iteration gap ([nan] likewise). *)
  min_period : float;
  busy_time : float array;
      (** Per-processor total busy time attributable to this app. *)
}

type stats = {
  final_time : float;  (** Simulated time at which the run stopped. *)
  total_firings : int;
  proc_busy : float array;  (** Per-processor total busy time (all apps). *)
}

val run :
  ?horizon:float ->
  ?warmup_iterations:int ->
  ?on_event:(event -> unit) ->
  ?firing_time:(app:int -> actor:int -> float) ->
  ?arbitration:arbitration ->
  procs:int ->
  app array ->
  result array * stats
(** [run ~procs apps] simulates until [horizon] (default [500_000.], the
    paper's setting).  [warmup_iterations] (default [20]) initial iterations
    of each app are excluded from the period statistics to remove the
    transient.

    [firing_time] overrides the duration of each firing as it starts
    (arguments are the application index and actor id); the default uses the
    graph's static execution time.  This is the hook for stochastic
    execution times, time-varying behaviour or fault injection — the value
    must be positive.
    @raise Invalid_argument on an invalid mapping, an empty application set,
    or a non-positive [firing_time] result. *)

val utilisation : stats -> float array
(** Per-processor busy fraction of the simulated time. *)
