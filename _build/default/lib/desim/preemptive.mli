(** Preemptive TDMA simulation.

    Each processor runs a time wheel of length [wheel], divided into equal
    slices among the applications that map at least one actor onto it (in
    application-index order).  A firing executes only during its
    application's slice and is paused at the boundary — the execution model
    assumed by the TDMA worst-case analysis of the paper's reference [3]
    (implemented analytically in {!Contention.Tdma}).  Strict TDMA never
    reassigns an idle slice, which is exactly the pessimism the paper's
    probabilistic approach avoids by not imposing any schedule.

    Results reuse {!Engine.result} so TDMA, FCFS and static-order runs
    compare directly.

    Modelling choices: firings of one application run back to back within
    its slice; a firing enabled mid-slice by a completion on {e another}
    processor is served from the arrival point onwards within the owner's
    slices (arrival stamps are respected); an idle slice is wasted, as strict
    TDMA demands. *)

val slice_of : wheel:float -> sharers:int -> float
(** Equal division of the wheel ([wheel / sharers]).
    @raise Invalid_argument unless both arguments are positive. *)

val run :
  ?horizon:float ->
  ?warmup_iterations:int ->
  ?on_event:(Engine.event -> unit) ->
  wheel:float ->
  procs:int ->
  Engine.app array ->
  Engine.result array * Engine.stats
(** Simulate under preemptive TDMA.  Defaults as {!Engine.run}.  [on_event]
    sees [Start] when a firing's first segment begins executing and [Finish]
    at its final completion, so start-to-finish spans include preemption
    gaps.
    @raise Invalid_argument on an invalid mapping, an empty application set,
    or a non-positive [wheel]. *)
