type app = Appstate.app = { graph : Sdf.Graph.t; mapping : int array }

type event =
  | Start of { time : float; app : int; actor : int; proc : int }
  | Finish of { time : float; app : int; actor : int; proc : int }

type result = Appstate.result = {
  app_name : string;
  iterations : int;
  avg_period : float;
  max_period : float;
  min_period : float;
  busy_time : float array;
}

type stats = {
  final_time : float;
  total_firings : int;
  proc_busy : float array;
}

type arbitration = Fcfs | Fixed_priority | Static_order of (int * int) array array

type actor_state = Idle | Queued | Running

(* Remove one occurrence of [chosen] from the queue, preserving the arrival
   order of the rest. *)
let remove_from_queue queue chosen =
  let rest = Queue.create () in
  let removed = ref false in
  Queue.iter
    (fun entry ->
      if (not !removed) && entry = chosen then removed := true
      else Queue.add entry rest)
    queue;
  Queue.clear queue;
  Queue.transfer rest queue;
  !removed

(* Remove and return the queued entry the policy selects; FCFS is the plain
   queue head, fixed priority scans for the minimal (app, actor) pair, and
   static order waits for the next scheduled entry (tracked by [order_pos]). *)
let take_next arbitration order_pos proc queue =
  match arbitration with
  | Fcfs -> Queue.take_opt queue
  | Fixed_priority ->
      if Queue.is_empty queue then None
      else begin
        let best = Queue.fold (fun acc entry ->
            match acc with
            | Some b when compare b entry <= 0 -> acc
            | _ -> Some entry)
            None queue
        in
        match best with
        | None -> None
        | Some chosen ->
            let _ = remove_from_queue queue chosen in
            Some chosen
      end
  | Static_order orders ->
      let order = orders.(proc) in
      if Array.length order = 0 then None
      else begin
        let scheduled = order.(order_pos.(proc) mod Array.length order) in
        if remove_from_queue queue scheduled then begin
          order_pos.(proc) <- (order_pos.(proc) + 1) mod Array.length order;
          Some scheduled
        end
        else None
      end

let run ?(horizon = 500_000.) ?(warmup_iterations = 20) ?on_event ?firing_time
    ?(arbitration = Fcfs) ~procs apps =
  if Array.length apps = 0 then invalid_arg "Desim.Engine.run: no applications";
  if procs < 1 then invalid_arg "Desim.Engine.run: procs < 1";
  Array.iteri (fun index a -> Appstate.validate ~procs ~index a) apps;
  (match arbitration with
  | Static_order orders ->
      if Array.length orders <> procs then
        invalid_arg "Desim.Engine: static order must list every processor";
      Array.iteri
        (fun proc order ->
          Array.iter
            (fun (ai, actor) ->
              if ai < 0 || ai >= Array.length apps then
                invalid_arg (Printf.sprintf "Desim.Engine: order names app %d" ai);
              if actor < 0 || actor >= Sdf.Graph.num_actors apps.(ai).graph then
                invalid_arg (Printf.sprintf "Desim.Engine: order names actor %d" actor);
              if apps.(ai).mapping.(actor) <> proc then
                invalid_arg
                  (Printf.sprintf
                     "Desim.Engine: order on processor %d names actor mapped to %d" proc
                     apps.(ai).mapping.(actor)))
            order)
        orders
  | Fcfs | Fixed_priority -> ());
  let order_pos = Array.make procs 0 in
  let states = Array.map (fun a -> Appstate.make ~procs a) apps in
  let actor_states =
    Array.map (fun a -> Array.make (Sdf.Graph.num_actors a.graph) Idle) apps
  in
  let queues = Array.init procs (fun _ -> Queue.create ()) in
  let proc_running = Array.make procs None in
  let proc_busy = Array.make procs 0. in
  let heap = Heap.create () in
  let total_firings = ref 0 in
  let emit e = match on_event with Some f -> f e | None -> () in
  let enabled ai actor =
    actor_states.(ai).(actor) = Idle && Appstate.tokens_enabled states.(ai) actor
  in
  let enqueue ai actor =
    actor_states.(ai).(actor) <- Queued;
    Queue.add (ai, actor) queues.(states.(ai).Appstate.app.mapping.(actor))
  in
  let start_service time proc =
    match take_next arbitration order_pos proc queues.(proc) with
    | None -> ()
    | Some (ai, actor) ->
        let st = states.(ai) in
        assert (actor_states.(ai).(actor) = Queued);
        Appstate.consume_inputs st actor;
        actor_states.(ai).(actor) <- Running;
        proc_running.(proc) <- Some (ai, actor);
        let tau =
          match firing_time with
          | None -> (Sdf.Graph.actor st.Appstate.app.graph actor).exec_time
          | Some f ->
              let tau = f ~app:ai ~actor in
              if tau <= 0. then
                invalid_arg
                  (Printf.sprintf "Desim.Engine: firing_time %g for app %d actor %d"
                     tau ai actor)
              else tau
        in
        proc_busy.(proc) <- proc_busy.(proc) +. tau;
        st.Appstate.busy.(proc) <- st.Appstate.busy.(proc) +. tau;
        emit (Start { time; app = ai; actor; proc });
        Heap.push heap ~time:(time +. tau) (ai, actor)
  in
  let finish time ai actor =
    let st = states.(ai) in
    let proc = st.Appstate.app.mapping.(actor) in
    proc_running.(proc) <- None;
    actor_states.(ai).(actor) <- Idle;
    Appstate.finish_firing st ~warmup:warmup_iterations ~actor ~time;
    incr total_firings;
    emit (Finish { time; app = ai; actor; proc });
    (* The finished actor itself and the consumers of its output channels may
       have become enabled. *)
    if enabled ai actor then enqueue ai actor;
    List.iter
      (fun dst -> if enabled ai dst then enqueue ai dst)
      (Appstate.output_consumers st actor)
  in
  (* Boot: queue everything initially enabled, start the processors. *)
  Array.iteri
    (fun ai (a : app) ->
      for actor = 0 to Sdf.Graph.num_actors a.graph - 1 do
        if enabled ai actor then enqueue ai actor
      done)
    apps;
  for proc = 0 to procs - 1 do
    start_service 0. proc
  done;
  let now = ref 0. in
  let running = ref true in
  while !running do
    match Heap.pop heap with
    | None -> running := false
    | Some (time, (ai, actor)) ->
        if time > horizon then begin
          running := false;
          now := horizon
        end
        else begin
          now := time;
          finish time ai actor;
          (* Drain every completion scheduled for this same instant before
             any service decision, so arbitration sees the full state of
             time [time]. *)
          let same_instant = ref true in
          while !same_instant do
            match Heap.peek_time heap with
            | Some t when t = time -> (
                match Heap.pop heap with
                | Some (_, (ai, actor)) -> finish time ai actor
                | None -> same_instant := false)
            | Some _ | None -> same_instant := false
          done;
          (* Idle processors with waiting work pick their next firing. *)
          for proc = 0 to procs - 1 do
            if proc_running.(proc) = None && not (Queue.is_empty queues.(proc)) then
              start_service time proc
          done
        end
  done;
  ( Array.map Appstate.result states,
    { final_time = !now; total_firings = !total_firings; proc_busy } )

let utilisation stats =
  if stats.final_time <= 0. then Array.map (fun _ -> 0.) stats.proc_busy
  else Array.map (fun b -> b /. stats.final_time) stats.proc_busy
