let slice_of ~wheel ~sharers =
  if wheel <= 0. then invalid_arg "Desim.Preemptive.slice_of: wheel <= 0";
  if sharers <= 0 then invalid_arg "Desim.Preemptive.slice_of: sharers <= 0";
  wheel /. float_of_int sharers

(* Per-processor TDMA state.  Every actor mapped on the processor owns one
   slice per wheel revolution (matching Contention.Tdma).  The simulation is
   event driven: slice boundaries and in-slice completions interleave in
   global time order, so an actor enabled mid-slice by a completion on
   another processor starts immediately — exactly the freedom the analytical
   worst-case model grants. *)
type running = {
  slot : int;  (* owner slot index *)
  started : float;
  remaining : float;  (* at [started] *)
}

type proc_state = {
  owners : (int * int) array;  (* (app, actor) owning each slice *)
  slice : float;
  paused : float array;  (* remaining work per owner slot; 0 = none *)
  pending : float array;  (* arrival time per owner slot; nan = none *)
  mutable slot_index : int;
  mutable slice_end : float;
  mutable running : running option;
  mutable generation : int;  (* invalidates scheduled completion events *)
}

type event = Boundary of int | Completion of int * int  (* proc, generation *)

let run ?(horizon = 500_000.) ?(warmup_iterations = 20) ?on_event ~wheel ~procs apps =
  if Array.length apps = 0 then invalid_arg "Desim.Preemptive.run: no applications";
  if procs < 1 then invalid_arg "Desim.Preemptive.run: procs < 1";
  if wheel <= 0. then invalid_arg "Desim.Preemptive.run: wheel <= 0";
  Array.iteri (fun index a -> Appstate.validate ~procs ~index a) apps;
  let states = Array.map (fun a -> Appstate.make ~procs a) apps in
  let busy_actor =
    Array.map
      (fun (a : Appstate.app) -> Array.make (Sdf.Graph.num_actors a.graph) false)
      apps
  in
  let proc_states =
    Array.init procs (fun proc ->
        let owners =
          Array.of_list
            (List.concat
               (List.mapi
                  (fun ai (a : Appstate.app) ->
                    List.filter_map
                      (fun actor ->
                        if a.mapping.(actor) = proc then Some (ai, actor) else None)
                      (List.init (Array.length a.mapping) Fun.id))
                  (Array.to_list apps)))
        in
        let sharers = Int.max 1 (Array.length owners) in
        let slice = slice_of ~wheel ~sharers in
        {
          owners;
          slice;
          paused = Array.make sharers 0.;
          pending = Array.make sharers nan;
          slot_index = 0;
          slice_end = slice;
          running = None;
          generation = 0;
        })
  in
  let proc_busy = Array.make procs 0. in
  let total_firings = ref 0 in
  let heap : event Heap.t = Heap.create () in
  for proc = 0 to procs - 1 do
    Heap.push heap ~time:proc_states.(proc).slice (Boundary proc)
  done;
  let slot_of ps ai actor =
    let found = ref (-1) in
    Array.iteri (fun i owner -> if owner = (ai, actor) then found := i) ps.owners;
    assert (!found >= 0);
    !found
  in
  (* Begin executing [remaining] units of the current slot's work at [time];
     schedule the completion when it fits in the slice (the boundary event
     handles the pause otherwise). *)
  let start_segment proc time remaining =
    let ps = proc_states.(proc) in
    ps.generation <- ps.generation + 1;
    ps.running <- Some { slot = ps.slot_index; started = time; remaining };
    if time +. remaining <= ps.slice_end +. 1e-9 then
      Heap.push heap ~time:(time +. remaining) (Completion (proc, ps.generation))
  in
  let emit e = match on_event with Some f -> f e | None -> () in
  (* Occupy the current slot of [proc] at [time] if work is available:
     paused work first, then a pending arrival that has already happened. *)
  let try_start proc time =
    let ps = proc_states.(proc) in
    if ps.running = None && Array.length ps.owners > 0 then begin
      let slot = ps.slot_index in
      if ps.paused.(slot) > 0. then begin
        let remaining = ps.paused.(slot) in
        ps.paused.(slot) <- 0.;
        start_segment proc time remaining
      end
      else if (not (Float.is_nan ps.pending.(slot))) && ps.pending.(slot) <= time +. 1e-9
      then begin
        ps.pending.(slot) <- nan;
        let ai, actor = ps.owners.(slot) in
        emit (Engine.Start { time; app = ai; actor; proc });
        start_segment proc time (Sdf.Graph.actor apps.(ai).Appstate.graph actor).exec_time
      end
    end
  in
  let enabled ai actor =
    (not busy_actor.(ai).(actor)) && Appstate.tokens_enabled states.(ai) actor
  in
  (* An actor becomes ready: record the arrival and start it at once when its
     slice is currently open and idle. *)
  let arrive time ai actor =
    busy_actor.(ai).(actor) <- true;
    Appstate.consume_inputs states.(ai) actor;
    let proc = apps.(ai).Appstate.mapping.(actor) in
    let ps = proc_states.(proc) in
    let slot = slot_of ps ai actor in
    ps.pending.(slot) <- time;
    if ps.slot_index = slot then try_start proc time
  in
  let arrive_if_enabled time ai actor = if enabled ai actor then arrive time ai actor in
  let account proc ai spent =
    proc_busy.(proc) <- proc_busy.(proc) +. spent;
    states.(ai).Appstate.busy.(proc) <- states.(ai).Appstate.busy.(proc) +. spent
  in
  let finish_and_propagate proc time slot =
    let ps = proc_states.(proc) in
    let ai, actor = ps.owners.(slot) in
    emit (Engine.Finish { time; app = ai; actor; proc });
    busy_actor.(ai).(actor) <- false;
    Appstate.finish_firing states.(ai) ~warmup:warmup_iterations ~actor ~time;
    incr total_firings;
    arrive_if_enabled time ai actor;
    List.iter (arrive_if_enabled time ai) (Appstate.output_consumers states.(ai) actor)
  in
  let complete proc time =
    let ps = proc_states.(proc) in
    match ps.running with
    | None -> assert false
    | Some r ->
        account proc (fst ps.owners.(r.slot)) r.remaining;
        ps.running <- None;
        ps.generation <- ps.generation + 1;
        finish_and_propagate proc time r.slot;
        (* The freed slot may immediately serve the actor's next firing. *)
        try_start proc time
  in
  let boundary proc time =
    let ps = proc_states.(proc) in
    (* Settle the running segment first, but defer the completion
       propagation until after the wheel has rotated: re-enabling the
       finished actor must not let it steal the next owner's slice. *)
    let completed_slot = ref None in
    if Array.length ps.owners > 0 then begin
      (match ps.running with
      | Some r ->
          let elapsed = time -. r.started in
          let remaining = r.remaining -. elapsed in
          account proc (fst ps.owners.(r.slot)) elapsed;
          ps.running <- None;
          ps.generation <- ps.generation + 1;
          if remaining <= 1e-9 then
            (* Finished exactly at the boundary; its completion event at this
               instant is stale, so settle it here. *)
            completed_slot := Some r.slot
          else ps.paused.(r.slot) <- remaining
      | None -> ());
      ps.slot_index <- (ps.slot_index + 1) mod Array.length ps.owners
    end;
    ps.slice_end <- time +. ps.slice;
    Heap.push heap ~time:ps.slice_end (Boundary proc);
    (match !completed_slot with
    | Some slot -> finish_and_propagate proc time slot
    | None -> ());
    try_start proc time
  in
  (* Boot: everything initially enabled arrives at time 0. *)
  Array.iteri
    (fun ai (a : Appstate.app) ->
      for actor = 0 to Sdf.Graph.num_actors a.graph - 1 do
        arrive_if_enabled 0. ai actor
      done)
    apps;
  let now = ref 0. in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (time, _) when time > horizon ->
        now := horizon;
        continue := false
    | Some (time, Boundary proc) ->
        now := time;
        boundary proc time
    | Some (time, Completion (proc, generation)) ->
        now := time;
        if proc_states.(proc).generation = generation then complete proc time
  done;
  ( Array.map Appstate.result states,
    { Engine.final_time = !now; total_firings = !total_firings; proc_busy } )
