(* VCD identifier codes: printable ASCII 33..126, multi-character when
   needed. *)
let id_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let of_trace trace ~apps ~procs ?(timescale = "1us") ?(resolution = 1.) () =
  if resolution <= 0. then invalid_arg "Desim.Vcd.of_trace: resolution <= 0";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  (* Signal declarations: one wire per actor, one string per processor. *)
  let actor_ids = Hashtbl.create 64 in
  let next = ref 0 in
  Array.iteri
    (fun ai (app : Engine.app) ->
      Buffer.add_string buf
        (Printf.sprintf "$scope module %s $end\n" app.graph.Sdf.Graph.name);
      Array.iter
        (fun (a : Sdf.Graph.actor) ->
          let id = id_of_index !next in
          incr next;
          Hashtbl.replace actor_ids (ai, a.id) id;
          Buffer.add_string buf (Printf.sprintf "$var wire 1 %s %s $end\n" id a.name))
        app.graph.Sdf.Graph.actors;
      Buffer.add_string buf "$upscope $end\n")
    apps;
  let proc_ids =
    Array.init procs (fun _ ->
        let id = id_of_index !next in
        incr next;
        id)
  in
  Buffer.add_string buf "$scope module procs $end\n";
  Array.iteri
    (fun p id ->
      Buffer.add_string buf (Printf.sprintf "$var string 1 %s proc%d $end\n" id p))
    proc_ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Events: starts raise the actor wire and set the processor string;
     finishes lower the wire and idle the processor. *)
  let events = ref [] in
  List.iter
    (fun (r : Trace.record) ->
      let actor_id = Hashtbl.find actor_ids (r.app, r.actor) in
      let name =
        (Sdf.Graph.actor apps.(r.app).Engine.graph r.actor).Sdf.Graph.name
      in
      events :=
        (r.start_time, Printf.sprintf "1%s" actor_id)
        :: (r.start_time, Printf.sprintf "s%s %s" name proc_ids.(r.proc))
        :: (r.finish_time, Printf.sprintf "0%s" actor_id)
        :: (r.finish_time, Printf.sprintf "sidle %s" proc_ids.(r.proc))
        :: !events)
    (Trace.records trace);
  let events =
    List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) (List.rev !events)
  in
  (* Initial values. *)
  Buffer.add_string buf "#0\n";
  Hashtbl.iter (fun _ id -> Buffer.add_string buf (Printf.sprintf "0%s\n" id)) actor_ids;
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "sidle %s\n" id))
    proc_ids;
  let current = ref 0 in
  List.iter
    (fun (t, change) ->
      let stamp = int_of_float (Float.round (t /. resolution)) in
      if stamp <> !current then begin
        current := stamp;
        Buffer.add_string buf (Printf.sprintf "#%d\n" stamp)
      end;
      Buffer.add_string buf (change ^ "\n"))
    events;
  Buffer.contents buf

let write_file path trace ~apps ~procs () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_trace trace ~apps ~procs ()))
