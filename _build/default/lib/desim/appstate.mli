(** Per-application dataflow state shared by the simulation engines
    ({!Engine} and {!Preemptive}): token counts, firing counts, iteration
    bookkeeping and per-processor busy time.  The arbitration-specific state
    (queues, wheel positions, pause/resume) stays in each engine. *)

type app = {
  graph : Sdf.Graph.t;
  mapping : int array;  (** [mapping.(actor_id)] is the processor id. *)
}

type result = {
  app_name : string;
  iterations : int;
  avg_period : float;
  max_period : float;
  min_period : float;
  busy_time : float array;
}

type t = {
  app : app;
  q : int array;  (** Repetition vector. *)
  in_idx : int list array;  (** Channel indices feeding each actor. *)
  tokens : int array;  (** Current token count per channel. *)
  fires : int array;  (** Completed firings per actor. *)
  busy : float array;  (** Busy time attributed to this app, per processor. *)
  mutable iterations : int;
  mutable last_completion : float;
  mutable kept_first : float;
  mutable kept_count : int;
  mutable max_gap : float;
  mutable min_gap : float;
}

val validate : procs:int -> index:int -> app -> unit
(** @raise Invalid_argument on a mapping of the wrong length or one that
    targets a processor outside [\[0, procs)]. *)

val make : procs:int -> app -> t
(** @raise Invalid_argument if the graph is inconsistent. *)

val tokens_enabled : t -> int -> bool
(** Whether every input channel of the actor holds enough tokens.  Engines
    add their own "not already running/queued" condition. *)

val consume_inputs : t -> int -> unit
(** Remove the consumption rates from the actor's input channels — called
    when a firing starts. *)

val finish_firing : t -> warmup:int -> actor:int -> time:float -> unit
(** Produce the actor's output tokens, count the firing, and record an
    iteration boundary when the reference actor (id 0) completes its
    [q.(0)]-th firing — excluding the first [warmup] iterations from the
    period statistics. *)

val output_consumers : t -> int -> int list
(** Destination actors of the actor's output channels (with duplicates
    when parallel channels exist — harmless for enabling checks). *)

val result : t -> result
