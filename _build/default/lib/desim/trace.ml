type record = {
  app : int;
  actor : int;
  proc : int;
  start_time : float;
  finish_time : float;
}

type t = {
  mutable completed : record list;  (* reverse finish order *)
  mutable count : int;
  open_starts : (int * int, float) Hashtbl.t;
}

let create () = { completed = []; count = 0; open_starts = Hashtbl.create 64 }

let on_event t = function
  | Engine.Start { time; app; actor; _ } -> Hashtbl.replace t.open_starts (app, actor) time
  | Engine.Finish { time; app; actor; proc } -> (
      match Hashtbl.find_opt t.open_starts (app, actor) with
      | None -> ()
      | Some start_time ->
          Hashtbl.remove t.open_starts (app, actor);
          t.completed <-
            { app; actor; proc; start_time; finish_time = time } :: t.completed;
          t.count <- t.count + 1)

let records t = List.rev t.completed
let num_records t = t.count

type service_stats = {
  firings : int;
  total_busy : float;
  mean_service : float;
  mean_gap : float;
}

let actor_stats t ~app ~actor =
  let own =
    List.filter (fun r -> r.app = app && r.actor = actor) (records t)
  in
  match own with
  | [] -> raise Not_found
  | own ->
      let firings = List.length own in
      let total_busy =
        List.fold_left (fun acc r -> acc +. (r.finish_time -. r.start_time)) 0. own
      in
      let rec gaps acc = function
        | a :: (b :: _ as rest) -> gaps ((b.start_time -. a.finish_time) :: acc) rest
        | [ _ ] | [] -> acc
      in
      let gap_list = gaps [] own in
      let mean_gap =
        match gap_list with
        | [] -> nan
        | gs -> List.fold_left ( +. ) 0. gs /. float_of_int (List.length gs)
      in
      {
        firings;
        total_busy;
        mean_service = total_busy /. float_of_int firings;
        mean_gap;
      }

let proc_timeline t ~proc =
  List.sort
    (fun a b -> Float.compare a.start_time b.start_time)
    (List.filter (fun r -> r.proc = proc) (records t))

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "app,actor,proc,start,finish\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%g,%g\n" r.app r.actor r.proc r.start_time
           r.finish_time))
    (records t);
  Buffer.contents buf

let static_order t ~procs ~window:(from_t, until_t) =
  if until_t <= from_t then invalid_arg "Desim.Trace.static_order: empty window";
  Array.init procs (fun proc ->
      let in_window =
        List.filter
          (fun r -> r.start_time >= from_t && r.start_time < until_t)
          (proc_timeline t ~proc)
      in
      Array.of_list (List.map (fun r -> (r.app, r.actor)) in_window))
