let neg_inf = neg_infinity

type mat = float array array

let matrix n = Array.make_matrix n n neg_inf

let identity n =
  let m = matrix n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.
  done;
  m

let size m = Array.length m

let multiply a b =
  let n = size a in
  if size b <> n || (n > 0 && Array.length a.(0) <> n) then
    invalid_arg "Maxplus.multiply: dimension mismatch";
  let c = matrix n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = a.(i).(k) in
      if aik > neg_inf then
        for j = 0 to n - 1 do
          let v = aik +. b.(k).(j) in
          if v > c.(i).(j) then c.(i).(j) <- v
        done
    done
  done;
  c

let apply m x =
  let n = size m in
  if Array.length x <> n then invalid_arg "Maxplus.apply: dimension mismatch";
  Array.init n (fun i ->
      let best = ref neg_inf in
      for j = 0 to n - 1 do
        let v = m.(i).(j) +. x.(j) in
        if v > !best then best := v
      done;
      !best)

let closure a =
  let n = size a in
  let d = Array.map Array.copy a in
  for i = 0 to n - 1 do
    if d.(i).(i) < 0. then d.(i).(i) <- 0.
  done;
  (* Floyd-Warshall longest paths in (max, +). *)
  (try
     for k = 0 to n - 1 do
       for i = 0 to n - 1 do
         if d.(i).(k) > neg_inf then
           for j = 0 to n - 1 do
             let v = d.(i).(k) +. d.(k).(j) in
             if v > d.(i).(j) then d.(i).(j) <- v
           done
       done;
       for i = 0 to n - 1 do
         if d.(i).(i) > 0. then raise Exit
       done
     done
   with Exit -> d.(0).(0) <- nan);
  if n > 0 && Float.is_nan d.(0).(0) then None else Some d

(* Detect the periodic regime of the power sequence: normalised completion
   vectors repeat, and the accumulated shift divided by the cycle length is
   the eigenvalue. *)
let eigenvalue ?(max_iterations = 100_000) m =
  let n = size m in
  if n = 0 then None
  else begin
    let key x =
      (* Normalise by the first finite entry; quantise to make float keys
         robust.  The same key implies the same finite pattern, hence the
         same reference index for the accumulated shift. *)
      match Array.find_opt (fun v -> v > neg_inf) x with
      | None -> None
      | Some base ->
          let normalised =
            Array.map
              (fun v ->
                if v > neg_inf then Float.round ((v -. base) *. 1e6) else neg_inf)
              x
          in
          Some (normalised, base)
    in
    let seen = Hashtbl.create 256 in
    let rec iterate k x =
      if k > max_iterations then None
      else
        match key x with
        | None -> None
        | Some (normalised, base) -> (
            match Hashtbl.find_opt seen normalised with
            | Some (k0, base0) -> Some ((base -. base0) /. float_of_int (k - k0))
            | None ->
                Hashtbl.add seen normalised (k, base);
                iterate (k + 1) (apply m x))
    in
    iterate 0 (Array.make n 0.)
  end

let of_graph g =
  let h = Sdf.Hsdf.expand g in
  let nodes = Sdf.Hsdf.num_nodes h in
  (* Registers for dependencies spanning more than one iteration: an edge of
     delay d >= 2 routes through d - 1 unit-delay registers. *)
  let registers = ref 0 in
  Array.iter
    (fun (e : Sdf.Hsdf.edge) -> if e.delay >= 2 then registers := !registers + e.delay - 1)
    h.edges;
  let n = nodes + !registers in
  let a0 = matrix n and a1 = matrix n in
  let weight_to v = h.nodes.(v).Sdf.Hsdf.exec_time in
  let next_register = ref nodes in
  Array.iter
    (fun (e : Sdf.Hsdf.edge) ->
      let u = e.from_node and v = e.to_node in
      match e.delay with
      | 0 -> a0.(v).(u) <- Float.max a0.(v).(u) (weight_to v)
      | 1 -> a1.(v).(u) <- Float.max a1.(v).(u) (weight_to v)
      | d ->
          (* u -> r1 -> ... -> r(d-1) -> v, one iteration per hop. *)
          let first = !next_register in
          next_register := !next_register + d - 1;
          a1.(first).(u) <- Float.max a1.(first).(u) 0.;
          for j = 1 to d - 2 do
            a1.(first + j).(first + j - 1) <- 0.
          done;
          a1.(v).(first + d - 2) <- Float.max a1.(v).(first + d - 2) (weight_to v))
    h.edges;
  match closure a0 with
  | None -> invalid_arg "Maxplus.of_graph: zero-delay cycle (deadlock)"
  | Some star -> multiply star a1

let period g =
  match eigenvalue (of_graph g) with
  | Some lambda -> lambda
  | None -> invalid_arg "Maxplus.period: power algorithm did not settle"
