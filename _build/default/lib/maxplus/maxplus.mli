(** Max-plus algebra over floats — a fourth, independent period engine.

    In the (max, +) semiring the self-timed evolution of an HSDF graph is
    linear: the vector [x(k)] of k-th completion times satisfies
    [x(k) = A ⊗ x(k-1)], and the steady-state growth rate per iteration —
    the unique eigenvalue of an irreducible [A] — is the graph's period
    (Baccelli, Cohen, Olsder & Quadrat, "Synchronization and Linearity").

    The matrix is built from the HSDF expansion: zero-delay dependencies are
    eliminated by the Kleene closure [A0*], multi-iteration dependencies by
    shift registers, leaving [A = A0* ⊗ A1].  The eigenvalue comes from the
    power algorithm with periodicity detection. *)

val neg_inf : float
(** The semiring zero ([-∞], "no edge"). *)

type mat = float array array
(** Square matrix; [m.(i).(j)] is the weight of the edge [j -> i]
    ([neg_inf] when absent), so [multiply m v] reads column-style like the
    usual [x(k) = A ⊗ x(k-1)]. *)

val identity : int -> mat
val matrix : int -> mat
(** All-[neg_inf] square matrix of the given size. *)

val multiply : mat -> mat -> mat
(** ⊗: [C.(i).(j) = max_k (A.(i).(k) + B.(k).(j))].
    @raise Invalid_argument on dimension mismatch. *)

val apply : mat -> float array -> float array
(** Matrix-vector product in (max, +). *)

val closure : mat -> mat option
(** Kleene star [A* = I ⊕ A ⊕ A² ⊕ …]; [None] when a cycle of positive
    weight makes it diverge.  Floyd-Warshall style, O(n³). *)

val eigenvalue : ?max_iterations:int -> mat -> float option
(** Power algorithm: iterate [x(k+1) = A ⊗ x(k)] from the zero vector and
    detect the periodic regime [x(k+c) = λc ⊗ x(k)]; returns [λ].  [None]
    if no finite eigenvalue is found within [max_iterations] (default
    [100_000]) — e.g. for a reducible matrix that never settles. *)

val of_graph : Sdf.Graph.t -> mat
(** The max-plus matrix of a graph's HSDF expansion (state = HSDF firings
    plus shift registers for dependencies spanning more than one
    iteration).
    @raise Invalid_argument on inconsistent graphs or zero-delay cycles. *)

val period : Sdf.Graph.t -> float
(** [eigenvalue (of_graph g)] — cross-validates {!Sdf.Statespace.period},
    {!Sdf.Hsdf.period} and {!Sdf.Hsdf.period_rational}.
    @raise Invalid_argument if the power algorithm fails to settle. *)
