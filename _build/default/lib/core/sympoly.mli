(** Elementary symmetric polynomials.

    [e_j(x_1..x_n) = sum over all j-element subsets S of (product of x_i, i in S)],
    with [e_0 = 1].  These are the [Pi_j] terms of the paper's Equation 4. *)

val all : float array -> float array
(** [all xs] is [[| e_0; e_1; ...; e_n |]] computed by the Newton-like
    recurrence in O(n²) time (each element folded into a running coefficient
    vector). *)

val up_to : int -> float array -> float array
(** [up_to k xs] is [[| e_0; ...; e_min(k,n) |]] in O(n·k) time — the
    truncation used by the m-th order approximation. *)

val without : float array -> float -> float array
(** [without es x_i] removes element [x_i] (by value) from the polynomial
    basis:
    given [es = all xs] it returns [all (xs minus one occurrence of x_i)]
    in O(n) time by deconvolution: [e'_j = e_j - x_i * e'_(j-1)].
    Numerically stable for [|x_i| <= 1] (probabilities). *)

val brute_force : int -> float array -> float
(** [brute_force j xs]: direct subset-sum definition, exponential; used only
    by tests as an oracle.  @raise Invalid_argument if [j < 0]. *)
