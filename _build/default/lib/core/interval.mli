(** Interval-valued waiting times for uncertain loads.

    At early design time execution times are estimates; this module
    propagates per-actor uncertainty through the waiting-time formulas.  The
    paper's estimators are monotone in every co-mapped actor's blocking
    probability and blocking time, so evaluating at the per-actor lower and
    upper loads yields sound bounds without interval-arithmetic blowup. *)

type bounds = { lower : Prob.t; upper : Prob.t }
(** Component-wise load bounds: [lower.p <= upper.p] and
    [lower.mu <= upper.mu]. *)

val of_load : ?p_margin:float -> ?mu_margin:float -> Prob.t -> bounds
(** Symmetric relative margins around a point load (default [0.1] each),
    clamped to valid probability range.
    @raise Invalid_argument on a negative margin. *)

val waiting_interval : Analysis.estimator -> bounds list -> float * float
(** [(lo, hi)] bracketing the waiting time a set of uncertain co-mapped
    actors inflicts, by evaluating the estimator on all-lower and all-upper
    loads. *)

val period_interval :
  ?engine:Analysis.period_engine ->
  Analysis.estimator ->
  (Analysis.app * bounds array) list ->
  (Analysis.app * (float * float)) list
(** Period bounds per application when every actor's load is uncertain:
    the Figure-4 algorithm run once with all-lower and once with all-upper
    loads.  The point estimate of {!Analysis.estimate} always lies within.
    @raise Invalid_argument on a bounds array of the wrong length. *)
