(** TDMA worst-case response times — the other baseline in the paper's
    related work (Bekooij et al., the paper's reference [3]).

    Each processor runs a time wheel of length [wheel]; every {e actor}
    mapped on the node owns one equal slice per revolution and execution is
    preempted at slice boundaries.  The worst case for a firing of length
    [exec] arrives just after its slice ended, then needs
    [ceil(exec / slice)] slices:

    {v R = exec + ceil(exec / slice) * (wheel - slice) v}

    As the paper notes, this bound needs preemption and "increases much more
    than the average case performance" as applications are added — the slice
    shrinks with every sharer, so the response time of {e every} actor grows
    even when the node is mostly idle.  It is included for the comparison the
    paper's Section 2 draws, not as part of the probabilistic approach. *)

val response_time : exec:float -> slice:float -> wheel:float -> float
(** @raise Invalid_argument unless [0 < slice <= wheel] and [exec > 0]. *)

val estimate : ?wheel:float -> Analysis.app list -> Analysis.estimate list
(** Figure-4-style period estimation with TDMA response times: each node's
    wheel is divided equally among the actors mapped on it, one slice per
    actor.  [wheel] defaults to [100.].  Results align with the input order,
    like {!Analysis.estimate}. *)
