let all xs =
  let n = Array.length xs in
  let e = Array.make (n + 1) 0. in
  e.(0) <- 1.;
  Array.iteri
    (fun i x ->
      (* After folding x_0..x_i, e.(j) holds e_j of those elements; update
         from high to low degree so each x is counted once. *)
      for j = i + 1 downto 1 do
        e.(j) <- e.(j) +. (x *. e.(j - 1))
      done)
    xs;
  e

let up_to k xs =
  let n = Array.length xs in
  let k = Int.min k n in
  let e = Array.make (k + 1) 0. in
  e.(0) <- 1.;
  Array.iteri
    (fun i x ->
      for j = Int.min k (i + 1) downto 1 do
        e.(j) <- e.(j) +. (x *. e.(j - 1))
      done)
    xs;
  e

let without es x =
  let n = Array.length es - 1 in
  let e' = Array.make n 0. in
  if n > 0 then begin
    e'.(0) <- 1.;
    for j = 1 to n - 1 do
      e'.(j) <- es.(j) -. (x *. e'.(j - 1))
    done
  end
  else if n = 0 then ()
  else invalid_arg "Contention.Sympoly.without: empty polynomial";
  e'

let brute_force j xs =
  if j < 0 then invalid_arg "Contention.Sympoly.brute_force: negative degree";
  let n = Array.length xs in
  let rec go idx remaining =
    if remaining = 0 then 1.
    else if idx >= n || n - idx < remaining then 0.
    else (xs.(idx) *. go (idx + 1) (remaining - 1)) +. go (idx + 1) remaining
  in
  go 0 j
