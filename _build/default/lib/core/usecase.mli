(** Use-cases: subsets of applications running concurrently (the paper's
    definition in Section 1).  Encoded as bit masks over application
    indices, so [n] applications induce [2^n - 1] non-empty use-cases. *)

type t = int
(** Bit [i] set means application [i] is active. *)

val of_list : int list -> t
(** @raise Invalid_argument on a negative or out-of-word index. *)

val to_list : t -> int list
(** Active application indices, ascending. *)

val cardinal : t -> int
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val singleton : int -> t

val all : napps:int -> t list
(** Every non-empty use-case, ascending as integers ([2^napps - 1] of them).
    @raise Invalid_argument if [napps] is negative or ≥ 30. *)

val of_size : napps:int -> int -> t list
(** Use-cases with exactly [k] active applications. *)

val full : napps:int -> t
(** All applications active — the maximum-contention case of Figure 5. *)

val pp : napps:int -> Format.formatter -> t -> unit
(** Prints e.g. ["{A,C,D}"] using letter names, matching the paper's
    application naming. *)
