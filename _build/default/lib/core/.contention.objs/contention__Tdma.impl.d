lib/core/tdma.ml: Analysis Array Float Hashtbl Option Sdf
