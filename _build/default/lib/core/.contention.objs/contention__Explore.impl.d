lib/core/explore.ml: Analysis Array Fun List Mapping Sdf
