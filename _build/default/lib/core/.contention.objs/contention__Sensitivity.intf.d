lib/core/sensitivity.mli: Analysis
