lib/core/wcrt.ml: List Prob
