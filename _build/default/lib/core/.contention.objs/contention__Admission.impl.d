lib/core/admission.ml: Analysis Array Compose List Printf Prob Sdf
