lib/core/wcrt.mli: Prob
