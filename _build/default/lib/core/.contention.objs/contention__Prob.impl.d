lib/core/prob.ml: Dist Float Format Printf
