lib/core/dist.ml: Format List Printf String
