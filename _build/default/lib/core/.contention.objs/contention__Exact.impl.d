lib/core/exact.ml: Array List Prob Sympoly
