lib/core/sympoly.mli:
