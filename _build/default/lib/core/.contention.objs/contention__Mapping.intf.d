lib/core/mapping.mli: Sdf
