lib/core/usecase.ml: Char Format Fun List Printf String
