lib/core/admission.mli: Analysis
