lib/core/usecase.mli: Format
