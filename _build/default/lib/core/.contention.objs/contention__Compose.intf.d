lib/core/compose.mli: Format Prob
