lib/core/tdma.mli: Analysis
