lib/core/approx.mli: Prob
