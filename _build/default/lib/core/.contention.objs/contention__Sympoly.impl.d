lib/core/sympoly.ml: Array Int
