lib/core/interval.mli: Analysis Prob
