lib/core/prob.mli: Dist Format
