lib/core/explore.mli: Analysis Mapping Sdf
