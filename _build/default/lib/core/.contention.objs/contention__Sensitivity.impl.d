lib/core/sensitivity.ml: Analysis Float List Repro_stats Sdf
