lib/core/interval.ml: Analysis Array Float List Prob Sdf
