lib/core/mapping.ml: Array Float Fun List Printf Sdf
