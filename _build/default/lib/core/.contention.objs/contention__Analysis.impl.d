lib/core/analysis.ml: Approx Array Compose Dist Exact Hashtbl List Mapping Option Printf Prob Sdf Wcrt
