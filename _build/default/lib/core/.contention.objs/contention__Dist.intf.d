lib/core/dist.mli: Format
