lib/core/compose.ml: Format List Prob
