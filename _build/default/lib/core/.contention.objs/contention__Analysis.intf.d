lib/core/analysis.mli: Dist Mapping Prob Sdf
