lib/core/exact.mli: Prob
