lib/core/approx.ml: Array Exact Int List Prob Sympoly
