type assignment = (Sdf.Graph.t * Mapping.t) list

let apps_of ~procs assignment =
  List.map (fun (g, m) -> Analysis.app ~procs g ~mapping:m) assignment

let score ?(estimator = Analysis.Order 2) ~procs assignment =
  let apps = apps_of ~procs assignment in
  let estimates = Analysis.estimate estimator apps in
  let ratios =
    List.map
      (fun (r : Analysis.estimate) -> r.period /. r.for_app.isolation_period)
      estimates
  in
  List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)

type outcome = {
  assignment : assignment;
  initial_score : float;
  final_score : float;
  moves : int;
  evaluations : int;
}

let improve ?(estimator = Analysis.Order 2) ?(max_moves = 32) ~procs assignment =
  if max_moves < 0 then invalid_arg "Contention.Explore.improve: negative max_moves";
  let evaluations = ref 0 in
  let eval a =
    incr evaluations;
    score ~estimator ~procs a
  in
  let initial_score = eval assignment in
  (* All (application, actor, target processor) moves that change the
     mapping. *)
  let moves_of current =
    List.concat
      (List.mapi
         (fun ai (_, m) ->
           List.concat
             (List.init (Array.length m) (fun actor ->
                  List.filter_map
                    (fun proc -> if m.(actor) = proc then None else Some (ai, actor, proc))
                    (List.init procs Fun.id))))
         current)
  in
  let apply current (ai, actor, proc) =
    List.mapi
      (fun i (g, m) ->
        if i = ai then begin
          let m' = Array.copy m in
          m'.(actor) <- proc;
          (g, m')
        end
        else (g, m))
      current
  in
  let rec descend current current_score accepted =
    if accepted >= max_moves then (current, current_score, accepted)
    else begin
      let best =
        List.fold_left
          (fun best move ->
            let candidate = apply current move in
            let s = eval candidate in
            match best with
            | Some (_, best_score) when best_score <= s -> best
            | _ when s < current_score -> Some (candidate, s)
            | best -> best)
          None (moves_of current)
      in
      match best with
      | Some (candidate, s) -> descend candidate s (accepted + 1)
      | None -> (current, current_score, accepted)
    end
  in
  let final, final_score, moves = descend assignment initial_score 0 in
  { assignment = final; initial_score; final_score; moves; evaluations = !evaluations }

let initial ~procs graphs = List.map (fun g -> (g, Mapping.modulo ~procs g)) graphs
