type bounds = { lower : Prob.t; upper : Prob.t }

let validate (b : bounds) =
  if b.lower.p > b.upper.p || b.lower.mu > b.upper.mu then
    invalid_arg "Contention.Interval: inverted bounds"

let of_load ?(p_margin = 0.1) ?(mu_margin = 0.1) (l : Prob.t) =
  if p_margin < 0. || mu_margin < 0. then
    invalid_arg "Contention.Interval.of_load: negative margin";
  let lower =
    Prob.make
      ~p:(Float.max 0. (l.p *. (1. -. p_margin)))
      ~mu:(l.mu *. (1. -. Float.min 1. mu_margin))
      ~tau:(l.tau *. (1. -. Float.min 1. mu_margin))
  in
  let upper =
    Prob.make
      ~p:(Float.min 1. (l.p *. (1. +. p_margin)))
      ~mu:(l.mu *. (1. +. mu_margin))
      ~tau:(l.tau *. (1. +. mu_margin))
  in
  { lower; upper }

let waiting_interval est bounds_list =
  List.iter validate bounds_list;
  let lo = Analysis.waiting_time_for est (List.map (fun b -> b.lower) bounds_list) in
  let hi = Analysis.waiting_time_for est (List.map (fun b -> b.upper) bounds_list) in
  (lo, hi)

let period_interval ?engine est apps_with_bounds =
  let side pick =
    Analysis.estimate_with_loads ?engine est
      (List.map
         (fun ((a : Analysis.app), bounds) ->
           if Array.length bounds <> Sdf.Graph.num_actors a.Analysis.graph then
             invalid_arg "Contention.Interval.period_interval: bounds length mismatch";
           Array.iter validate bounds;
           (a, Array.map pick bounds))
         apps_with_bounds)
  in
  let lows = side (fun b -> b.lower) and highs = side (fun b -> b.upper) in
  List.map2
    (fun (lo : Analysis.estimate) (hi : Analysis.estimate) ->
      (lo.Analysis.for_app, (lo.Analysis.period, hi.Analysis.period)))
    lows highs
