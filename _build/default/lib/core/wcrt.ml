let waiting_time loads =
  List.fold_left (fun acc (l : Prob.t) -> acc +. l.tau) 0. loads

let waiting_time_of_exec_times taus = List.fold_left ( +. ) 0. taus
