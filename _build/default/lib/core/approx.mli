(** m-th order approximations of the exact waiting time — the paper's
    Equation 5 and Section 4.1.

    The series of Equation 4 is truncated after the symmetric polynomial of
    degree [m - 1]; the resulting terms involve products of at most [m]
    probabilities.  The paper evaluates the second order

    {v W ≈ sum_i mu_i P_i (1 + 1/2 sum_(j≠i) P_j) v}

    and the fourth order.  Truncating after a {e positive} term (even [m])
    over-estimates the exact value, truncating after a negative term
    under-estimates it; hence the paper's observation that the second order
    is always more conservative than the fourth. *)

val waiting_time : order:int -> Prob.t list -> float
(** [waiting_time ~order loads] truncates Equation 4 at symmetric-polynomial
    degree [order - 1].  Complexity O(n·order).
    @raise Invalid_argument if [order < 2]. *)

val second_order : Prob.t list -> float
(** Specialised [order:2], the closed form above. *)

val fourth_order : Prob.t list -> float
