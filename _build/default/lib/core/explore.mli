(** Mapping design-space exploration driven by the probabilistic estimator.

    The paper's motivation is early design-time evaluation: because one
    analysis costs milliseconds instead of a simulation run, an optimiser can
    afford to score thousands of candidate mappings.  This module provides a
    deterministic steepest-descent search over single-actor moves, scored by
    the estimated periods of all applications.

    The search is deliberately simple — the point it demonstrates (and the
    bench measures) is that the estimator is cheap enough to sit in an
    optimisation loop. *)

type assignment = (Sdf.Graph.t * Mapping.t) list
(** One mapping per application, in a fixed application order. *)

val score : ?estimator:Analysis.estimator -> procs:int -> assignment -> float
(** Mean over applications of [estimated period / isolation period] — lower
    is better; [1.0] means contention-free.  Default estimator:
    [Order 2].  @raise Invalid_argument on invalid mappings. *)

type outcome = {
  assignment : assignment;
  initial_score : float;
  final_score : float;
  moves : int;  (** Accepted single-actor moves. *)
  evaluations : int;  (** Estimator invocations spent. *)
}

val improve :
  ?estimator:Analysis.estimator ->
  ?max_moves:int ->
  procs:int ->
  assignment ->
  outcome
(** Steepest descent: each round scores every (actor, target processor) move
    and applies the best strictly-improving one, stopping at a local optimum
    or after [max_moves] (default [32]) accepted moves. *)

val initial : procs:int -> Sdf.Graph.t list -> assignment
(** A sensible starting point: the modulo mapping for every application. *)
