(** Worst-case-response-time baseline (Hoes 2004 — the paper's reference [6]).

    On a non-preemptive node arbitrated round-robin, an arriving firing can
    in the worst case find every co-mapped actor ahead of it, each executing
    once in full: [twait(a) = sum over other actors b of tau(b)].  This is
    the "Analyzed Worst Case" the paper compares against — sound for
    hard-real-time use, but increasingly pessimistic as actors are added,
    which is exactly the effect Table 1 and Figure 6 quantify. *)

val waiting_time : Prob.t list -> float
(** Sum of the co-mapped actors' full execution times ([tau], not [mu]). *)

val waiting_time_of_exec_times : float list -> float
(** Same, from raw execution times. *)
