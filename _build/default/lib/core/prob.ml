type t = { p : float; mu : float; tau : float }

let make ~p ~mu ~tau =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Contention.Prob.make: probability %g outside [0,1]" p);
  if mu < 0. then invalid_arg (Printf.sprintf "Contention.Prob.make: negative mu %g" mu);
  if tau < 0. then invalid_arg (Printf.sprintf "Contention.Prob.make: negative tau %g" tau);
  { p; mu; tau }

let of_actor ~exec_time ~repetitions ~period =
  if exec_time <= 0. then invalid_arg "Contention.Prob.of_actor: exec_time <= 0";
  if repetitions <= 0 then invalid_arg "Contention.Prob.of_actor: repetitions <= 0";
  if period <= 0. then invalid_arg "Contention.Prob.of_actor: period <= 0";
  let p = Float.min 1. (exec_time *. float_of_int repetitions /. period) in
  { p; mu = exec_time /. 2.; tau = exec_time }

let of_distribution ~dist ~repetitions ~period =
  if repetitions <= 0 then invalid_arg "Contention.Prob.of_distribution: repetitions <= 0";
  if period <= 0. then invalid_arg "Contention.Prob.of_distribution: period <= 0";
  let m = Dist.mean dist in
  let p = Float.min 1. (m *. float_of_int repetitions /. period) in
  { p; mu = Dist.residual dist; tau = m }

let waiting_product t = t.mu *. t.p
let idle = { p = 0.; mu = 0.; tau = 0. }

let pp ppf t = Format.fprintf ppf "{p=%.4f; mu=%.2f; tau=%.2f}" t.p t.mu t.tau
