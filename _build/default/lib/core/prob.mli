(** Actor load descriptors: the only information the probabilistic analysis
    needs from an application (paper Definitions 4 and 5).

    - {e Blocking probability} [p = tau * q / period]: the probability that
      the actor occupies its processor at a random instant.
    - {e Average blocking time} [mu]: the expected remaining service time
      given that the actor is found occupying the processor.  For a constant
      execution time the remaining time is uniform on [\[0, tau\]], so
      [mu = tau / 2] (paper Equations 1–2). *)

type t = private {
  p : float;  (** Blocking probability, in [\[0, 1\]]. *)
  mu : float;  (** Average blocking time, ≥ 0. *)
  tau : float;  (** Execution (or response) time the load was derived from. *)
}

val make : p:float -> mu:float -> tau:float -> t
(** @raise Invalid_argument if [p] is outside [\[0,1\]] or [mu] or [tau] is
    negative. *)

val of_actor : exec_time:float -> repetitions:int -> period:float -> t
(** [of_actor ~exec_time ~repetitions ~period] is the load of an actor that
    fires [repetitions] times per graph iteration of length [period]:
    [p = exec_time * repetitions / period], capped at [1.] (a saturated
    resource), and [mu = exec_time / 2].
    @raise Invalid_argument if any argument is non-positive. *)

val of_distribution : dist:Dist.t -> repetitions:int -> period:float -> t
(** Variable execution times (the paper's Section 6 extension): the blocking
    probability uses the mean execution time, and the average blocking time
    becomes the mean residual life [E X² / (2 E X)] instead of [tau / 2].
    @raise Invalid_argument on an invalid distribution or non-positive
    [repetitions] or [period]. *)

val waiting_product : t -> float
(** [mu * p] — the actor's expected contribution to another actor's waiting
    time, written [W] in this library. *)

val idle : t
(** The load of an absent actor: [p = 0], [mu = 0]. *)

val pp : Format.formatter -> t -> unit
