type t = { p : float; w : float }

let empty = { p = 0.; w = 0. }
let of_load (l : Prob.t) = { p = l.p; w = Prob.waiting_product l }

let combine a b =
  {
    p = a.p +. b.p -. (a.p *. b.p);
    w = (a.w *. (1. +. (b.p /. 2.))) +. (b.w *. (1. +. (a.p /. 2.)));
  }

let combine_all ts = List.fold_left combine empty ts

let remove ~total x =
  if x.p >= 1. then
    invalid_arg "Contention.Compose.remove: inverse undefined for p = 1";
  let p_rest = (total.p -. x.p) /. (1. -. x.p) in
  let w_rest = (total.w -. (x.w *. (1. +. (p_rest /. 2.)))) /. (1. +. (x.p /. 2.)) in
  { p = p_rest; w = w_rest }

let waiting_time loads = (combine_all (List.map of_load loads)).w

let waiting_time_incremental ~all ~own = (remove ~total:all own).w

let pp ppf t = Format.fprintf ppf "{p=%.4f; w=%.4f}" t.p t.w
