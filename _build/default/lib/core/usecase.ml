type t = int

let max_apps = 30

let of_list ids =
  List.fold_left
    (fun acc id ->
      if id < 0 || id >= max_apps then
        invalid_arg (Printf.sprintf "Contention.Usecase.of_list: index %d" id);
      acc lor (1 lsl id))
    0 ids

let to_list t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if t land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go (max_apps - 1) []

let cardinal t =
  let rec go t acc = if t = 0 then acc else go (t lsr 1) (acc + (t land 1)) in
  go t 0

let mem i t = t land (1 lsl i) <> 0
let add i t = t lor (1 lsl i)
let remove i t = t land lnot (1 lsl i)
let singleton i = 1 lsl i

let all ~napps =
  if napps < 0 || napps >= max_apps then
    invalid_arg "Contention.Usecase.all: unsupported application count";
  List.init ((1 lsl napps) - 1) (fun i -> i + 1)

let of_size ~napps k = List.filter (fun t -> cardinal t = k) (all ~napps)

let full ~napps = (1 lsl napps) - 1

let pp ~napps ppf t =
  let names =
    List.filter_map
      (fun i -> if mem i t then Some (String.make 1 (Char.chr (Char.code 'A' + i))) else None)
      (List.init napps Fun.id)
  in
  Format.fprintf ppf "{%s}" (String.concat "," names)
