(** Composability-based analysis — the paper's Section 4.2.

    Two co-mapped actors are merged into one aggregate whose blocking
    probability and waiting-time product approximate the pair:

    {v
    P_ab = P_a ⊕ P_b = P_a + P_b - P_a P_b                      (Eq. 6)
    W_ab = W_a ⊗ W_b = W_a (1 + P_b/2) + W_b (1 + P_a/2)        (Eq. 7)
    v}

    ⊕ is exactly associative; ⊗ is associative to second order, which makes
    the fold order-insensitive up to higher-order terms.  Both operations
    invert (Eq. 8–9), so an actor (or a whole application) can be added to or
    removed from a node's aggregate in O(1) — the basis for run-time
    admission control ({!Admission}). *)

type t = private {
  p : float;  (** Combined blocking probability. *)
  w : float;  (** Combined waiting-time product [mu·P]. *)
}

val empty : t
(** Aggregate of no actors: [p = 0], [w = 0] (neutral element of {!combine}). *)

val of_load : Prob.t -> t

val combine : t -> t -> t
(** [⊕] on probabilities and [⊗] on waiting products.  Commutative;
    associative exactly in [p] and to second order in [w]. *)

val combine_all : t list -> t
(** Left fold of {!combine} over the list starting from {!empty}. *)

val remove : total:t -> t -> t
(** [remove ~total x] undoes [combine]: if [total = combine rest x] then
    [remove ~total x] recovers [rest] exactly (Eq. 8–9).
    @raise Invalid_argument when [x.p = 1.] (the inverse does not exist, as
    noted in the paper). *)

val waiting_time : Prob.t list -> float
(** Waiting time inflicted on an arriving actor by the given co-mapped
    actors: fold them with {!combine} and read the aggregate [w]. *)

val waiting_time_incremental : all:t -> own:t -> float
(** Waiting time for one actor given the aggregate [all] of {e every} actor
    on the node (including itself): removes [own] and reads [w] — the O(1)
    per-actor path enabled by the inverse formulae. *)

val pp : Format.formatter -> t -> unit
