type t = int array

let modulo ~procs g =
  if procs < 1 then invalid_arg "Contention.Mapping.modulo: procs < 1";
  Array.init (Sdf.Graph.num_actors g) (fun j -> j mod procs)

let dedicated g = Array.init (Sdf.Graph.num_actors g) Fun.id

let balanced ~procs g =
  if procs < 1 then invalid_arg "Contention.Mapping.balanced: procs < 1";
  let q = Sdf.Repetition.compute_exn g in
  let work a = (Sdf.Graph.actor g a).exec_time *. float_of_int q.(a) in
  let order =
    List.sort
      (fun a b -> Float.compare (work b) (work a))
      (List.init (Sdf.Graph.num_actors g) Fun.id)
  in
  let load = Array.make procs 0. in
  let mapping = Array.make (Sdf.Graph.num_actors g) 0 in
  let lightest () =
    let best = ref 0 in
    for p = 1 to procs - 1 do
      if load.(p) < load.(!best) then best := p
    done;
    !best
  in
  List.iter
    (fun a ->
      let p = lightest () in
      mapping.(a) <- p;
      load.(p) <- load.(p) +. work a)
    order;
  mapping

let validate ~procs g t =
  if Array.length t <> Sdf.Graph.num_actors g then
    invalid_arg "Contention.Mapping.validate: length mismatch";
  Array.iter
    (fun p ->
      if p < 0 || p >= procs then
        invalid_arg (Printf.sprintf "Contention.Mapping.validate: processor %d" p))
    t
