(** Exact expected waiting time — the paper's Equation 4.

    When an actor arrives at a node shared with actors [a_1 .. a_n], each
    [a_i] independently occupies the node with probability [P_i].  Of the
    blocking subset, one actor (uniformly chosen — no arrival order is
    imposed) is in service with expected residual [mu]; the others wait in
    queue and contribute their full execution time [tau = 2 mu].  Equation 4
    closes this model:

    {v
    W = sum_i mu_i P_i (1 + sum_(j=1)^(n-1) (-1)^(j+1)/(j+1) * e_j(P_(-i)))
    v}

    where [e_j(P_(-i))] is the elementary symmetric polynomial of the other
    actors' probabilities.  Direct evaluation is exponential (the paper cites
    O(n·n^n)); here each [e_j(P_(-i))] is obtained in O(n) from the full
    polynomial by deconvolution, giving O(n²) for one waiting time. *)

val series_coefficient : int -> float
(** [(-1)^(j+1) / (j+1)] — the weight of [e_j] in Equation 4; shared with the
    truncated evaluation in {!Approx}. *)

val waiting_time : Prob.t list -> float
(** Expected waiting time inflicted by the given co-mapped actors on an
    arriving actor.  Empty list: [0.]. *)

val waiting_time_brute_force : Prob.t list -> float
(** Oracle for tests: enumerates every blocking subset [S] and every choice
    of the in-service actor.  [E(wait | S) = (2|S| - 1)/|S| * sum_(i in S) mu_i]
    (uniform in-service choice; residual [mu] for the served actor, full
    [2 mu] for each queued one).  Exponential in the list length. *)
