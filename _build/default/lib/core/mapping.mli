(** Actor-to-processor mapping policies.

    The paper's evaluation maps actor [i] of every application onto processor
    [Proc_i] (its Section 3 example does exactly this), which the modulo
    policy generalises to graphs with more actors than processors. *)

type t = int array
(** [t.(actor_id)] is the processor id. *)

val modulo : procs:int -> Sdf.Graph.t -> t
(** Actor [j] on processor [j mod procs] — the paper's layout. *)

val dedicated : Sdf.Graph.t -> t
(** Actor [j] on its own processor [j]; needs [num_actors] processors.  Used
    to measure isolation behaviour in a shared simulator. *)

val balanced : procs:int -> Sdf.Graph.t -> t
(** Greedy first-fit by descending work ([tau * q]): each actor goes to the
    currently least-loaded processor.  An alternative policy for ablations. *)

val validate : procs:int -> Sdf.Graph.t -> t -> unit
(** @raise Invalid_argument if the mapping has the wrong length or targets a
    processor outside [\[0, procs)]. *)
