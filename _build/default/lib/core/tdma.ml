let response_time ~exec ~slice ~wheel =
  if exec <= 0. then invalid_arg "Contention.Tdma.response_time: exec <= 0";
  if slice <= 0. || slice > wheel then
    invalid_arg "Contention.Tdma.response_time: slice outside (0, wheel]";
  let slices = Float.ceil (exec /. slice) in
  exec +. (slices *. (wheel -. slice))

let estimate ?(wheel = 100.) apps =
  if wheel <= 0. then invalid_arg "Contention.Tdma.estimate: wheel <= 0";
  match apps with
  | [] -> []
  | apps ->
      let apps_arr = Array.of_list apps in
      (* Actors sharing each node: the slice is the wheel divided by their
         count (one slice per mapped actor). *)
      let sharers = Hashtbl.create 16 in
      Array.iter
        (fun (a : Analysis.app) ->
          Array.iter
            (fun proc ->
              let existing = Option.value ~default:0 (Hashtbl.find_opt sharers proc) in
              Hashtbl.replace sharers proc (existing + 1))
            a.mapping)
        apps_arr;
      let estimate_one (a : Analysis.app) =
        let n = Sdf.Graph.num_actors a.graph in
        let response_times =
          Array.init n (fun actor ->
              let proc = a.mapping.(actor) in
              let count = Option.value ~default:0 (Hashtbl.find_opt sharers proc) in
              let exec = (Sdf.Graph.actor a.graph actor).exec_time in
              if count <= 1 then exec
              else
                response_time ~exec ~slice:(wheel /. float_of_int count) ~wheel)
        in
        let waiting_times =
          Array.mapi
            (fun actor r -> r -. (Sdf.Graph.actor a.graph actor).exec_time)
            response_times
        in
        let adjusted = Sdf.Graph.with_exec_times a.graph response_times in
        {
          Analysis.for_app = a;
          waiting_times;
          response_times;
          period = Sdf.Hsdf.period adjusted;
        }
      in
      Array.to_list (Array.map estimate_one apps_arr)
