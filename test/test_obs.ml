(* The obs telemetry library: monotonic clock, span recording across
   domains, the metric registry, and byte-stable golden renderings of the
   two exposition formats (Chrome/Perfetto trace JSON and Prometheus text).

   Span recording is global process state; every test that enables it
   disables and drains under Fun.protect so the rest of the suite (pool,
   sweep, serve tests run in this same process) stays untraced. *)

(* --- clock ----------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let now = Obs.Clock.now_ns () in
    if Int64.compare now !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld after %Ld" now !prev;
    prev := now
  done;
  let t0 = Obs.Clock.now_ns () in
  Unix.sleepf 0.01;
  let dt = Obs.Clock.elapsed_s ~since:t0 in
  if dt < 0.005 || dt > 5. then
    Alcotest.failf "elapsed_s implausible for a 10ms sleep: %f (source %s)" dt
      Obs.Clock.source

(* --- spans ----------------------------------------------------------- *)

let with_tracing f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.reset ()) f

let test_span_disabled () =
  Obs.Span.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Span.enabled ());
  let built = ref false in
  let v =
    Obs.Span.with_ ~name:"quiet"
      ~args:(fun () -> built := true; [ ("k", "v") ])
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "with_ is transparent" 42 v;
  Alcotest.(check bool) "args thunk not forced when disabled" false !built;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Span.collect ()))

let test_span_records () =
  with_tracing (fun () ->
      let v =
        Obs.Span.with_ ~name:"outer"
          ~args:(fun () -> [ ("task", "7") ])
          (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () -> ());
            "done")
      in
      Alcotest.(check string) "result passed through" "done" v;
      (match Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom") with
      | (_ : unit) -> Alcotest.fail "exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "re-raised" "boom" msg);
      let spans = Obs.Span.collect () in
      let names = List.map (fun (s : Obs.Span.t) -> s.name) spans in
      Alcotest.(check (list string))
        "all three spans, sorted by start time"
        [ "outer"; "inner"; "raises" ] names;
      List.iter
        (fun (s : Obs.Span.t) ->
          if Int64.compare s.dur_ns 0L < 0 then
            Alcotest.failf "%s: negative duration" s.name)
        spans;
      (match spans with
      | outer :: inner :: _ ->
          Alcotest.(check (list (pair string string)))
            "args recorded" [ ("task", "7") ] outer.args;
          (* The inner span starts after and ends before the outer one. *)
          if Int64.compare inner.ts_ns outer.ts_ns < 0 then
            Alcotest.fail "inner starts before outer";
          if
            Int64.compare
              (Int64.add inner.ts_ns inner.dur_ns)
              (Int64.add outer.ts_ns outer.dur_ns)
            > 0
          then Alcotest.fail "inner outlives outer"
      | _ -> Alcotest.fail "missing spans");
      (* drain empties, collect after drain sees nothing. *)
      Alcotest.(check int) "drain returns them" 3
        (List.length (Obs.Span.drain ()));
      Alcotest.(check int) "drained" 0 (List.length (Obs.Span.collect ())))

let test_span_multi_domain () =
  with_tracing (fun () ->
      (* Spans recorded inside worker domains must survive Domain.join —
         the per-domain buffers outlive their domain. *)
      let doms =
        List.init 2 (fun i ->
            Domain.spawn (fun () ->
                for j = 0 to 1 do
                  Obs.Span.with_ ~name:"worker"
                    ~args:(fun () ->
                      [ ("domain", string_of_int i); ("j", string_of_int j) ])
                    (fun () -> ())
                done))
      in
      List.iter Domain.join doms;
      let spans = Obs.Span.collect () in
      Alcotest.(check int) "two spans per domain" 4 (List.length spans);
      let domains =
        List.sort_uniq Int.compare
          (List.map (fun (s : Obs.Span.t) -> s.domain) spans)
      in
      Alcotest.(check int) "two distinct tracks" 2 (List.length domains))

(* --- metric registry ------------------------------------------------- *)

let test_counter_gauge () =
  let r = Obs.Metric.create_registry () in
  let c = Obs.Metric.Counter.v ~registry:r ~labels:[ ("cmd", "ping") ] "reqs" in
  Obs.Metric.Counter.inc c;
  Obs.Metric.Counter.inc ~by:2.5 c;
  Alcotest.(check (float 0.)) "counter accumulates" 3.5
    (Obs.Metric.Counter.value c);
  (* The handle is get-or-create: same name+labels, same series. *)
  let c' = Obs.Metric.Counter.v ~registry:r ~labels:[ ("cmd", "ping") ] "reqs" in
  Obs.Metric.Counter.inc c';
  Alcotest.(check (float 0.)) "same series" 4.5 (Obs.Metric.Counter.value c);
  (try
     Obs.Metric.Counter.inc ~by:(-1.) c;
     Alcotest.fail "negative counter increment accepted"
   with Invalid_argument _ -> ());
  let g = Obs.Metric.Gauge.v ~registry:r "depth" in
  Obs.Metric.Gauge.set g 4.;
  Obs.Metric.Gauge.add g (-1.5);
  Alcotest.(check (float 0.)) "gauge set/add" 2.5 (Obs.Metric.Gauge.value g);
  (* One name, one kind. *)
  (try
     ignore (Obs.Metric.Gauge.v ~registry:r "reqs" : Obs.Metric.Gauge.t);
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Obs.Metric.Counter.v ~registry:r "0bad" : Obs.Metric.Counter.t);
     Alcotest.fail "invalid metric name accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Obs.Metric.Counter.v ~registry:r ~labels:[ ("le", "x") ] "ok"
         : Obs.Metric.Counter.t)
       (* "le" itself is fine as a label name; a bad one is not: *)
   with Invalid_argument _ -> Alcotest.fail "legal label rejected");
  try
    ignore
      (Obs.Metric.Counter.v ~registry:r ~labels:[ ("bad-name", "x") ] "ok2"
        : Obs.Metric.Counter.t);
    Alcotest.fail "invalid label name accepted"
  with Invalid_argument _ -> ()

let test_histogram () =
  let r = Obs.Metric.create_registry () in
  (try
     ignore
       (Obs.Metric.Histogram.v ~registry:r ~buckets:[| 2.; 1. |] "h"
         : Obs.Metric.Histogram.t);
     Alcotest.fail "non-increasing buckets accepted"
   with Invalid_argument _ -> ());
  let h =
    Obs.Metric.Histogram.v ~registry:r ~buckets:[| 0.01; 0.1; 1. |] "lat"
  in
  List.iter (Obs.Metric.Histogram.observe h) [ 0.005; 0.05; 0.5; 5. ];
  Alcotest.(check int) "count includes overflow" 4
    (Obs.Metric.Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum" 5.555 (Obs.Metric.Histogram.sum h);
  match Obs.Metric.export r with
  | [ { e_series = [ (_, Obs.Metric.Buckets b) ]; _ } ] ->
      Alcotest.(check (array int)) "per-bucket counts" [| 1; 1; 1 |] b.counts;
      Alcotest.(check int) "total count" 4 b.count
  | _ -> Alcotest.fail "export shape unexpected"

(* --- golden: Prometheus text ----------------------------------------- *)

let test_prometheus_golden () =
  let r = Obs.Metric.create_registry () in
  let c cmd =
    Obs.Metric.Counter.v ~registry:r ~help:"Total requests."
      ~labels:[ ("cmd", cmd) ] "requests_total"
  in
  Obs.Metric.Counter.inc ~by:3. (c "ping");
  Obs.Metric.Counter.inc ~by:2. (c "estimate");
  Obs.Metric.Gauge.set (Obs.Metric.Gauge.v ~registry:r ~help:"Depth." "queue_depth") 4.;
  let h =
    Obs.Metric.Histogram.v ~registry:r ~help:"Latency."
      ~buckets:[| 0.01; 0.1; 1. |] "latency_seconds"
  in
  List.iter (Obs.Metric.Histogram.observe h) [ 0.005; 0.05; 0.5; 5. ];
  let expected =
    String.concat "\n"
      [
        "# HELP latency_seconds Latency.";
        "# TYPE latency_seconds histogram";
        "latency_seconds_bucket{le=\"0.01\"} 1";
        "latency_seconds_bucket{le=\"0.1\"} 2";
        "latency_seconds_bucket{le=\"1\"} 3";
        "latency_seconds_bucket{le=\"+Inf\"} 4";
        "latency_seconds_sum 5.555";
        "latency_seconds_count 4";
        "# HELP queue_depth Depth.";
        "# TYPE queue_depth gauge";
        "queue_depth 4";
        "# HELP requests_total Total requests.";
        "# TYPE requests_total counter";
        "requests_total{cmd=\"estimate\"} 2";
        "requests_total{cmd=\"ping\"} 3";
        "";
      ]
  in
  Alcotest.(check string) "byte-stable exposition" expected
    (Obs.Prometheus.expose r)

let test_prometheus_escaping () =
  let r = Obs.Metric.create_registry () in
  Obs.Metric.Counter.inc
    (Obs.Metric.Counter.v ~registry:r ~help:"line one\nline \\two"
       ~labels:[ ("path", "a\"b\\c\nd") ]
       "esc_total");
  let expected =
    "# HELP esc_total line one\\nline \\\\two\n"
    ^ "# TYPE esc_total counter\n"
    ^ "esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"
  in
  Alcotest.(check string) "escaped help and label value" expected
    (Obs.Prometheus.expose r)

(* The histogram exposition path builds its own label sets (labels + le,
   then bare labels for _sum/_count); every one of those lines must escape
   a hostile label value per the 0.0.4 format. *)
let test_prometheus_histogram_escaping () =
  let r = Obs.Metric.create_registry () in
  let h =
    Obs.Metric.Histogram.v ~registry:r ~help:"back\\slash\nnewline."
      ~buckets:[| 1. |]
      ~labels:[ ("path", "a\"b\\c\nd") ]
      "esc_seconds"
  in
  Obs.Metric.Histogram.observe h 0.5;
  Obs.Metric.Histogram.observe h 2.0;
  let expected =
    String.concat "\n"
      [
        "# HELP esc_seconds back\\\\slash\\nnewline.";
        "# TYPE esc_seconds histogram";
        "esc_seconds_bucket{path=\"a\\\"b\\\\c\\nd\",le=\"1\"} 1";
        "esc_seconds_bucket{path=\"a\\\"b\\\\c\\nd\",le=\"+Inf\"} 2";
        "esc_seconds_sum{path=\"a\\\"b\\\\c\\nd\"} 2.5";
        "esc_seconds_count{path=\"a\\\"b\\\\c\\nd\"} 2";
        "";
      ]
  in
  Alcotest.(check string) "escaped histogram exposition" expected
    (Obs.Prometheus.expose r)

(* --- golden: Chrome trace JSON --------------------------------------- *)

let fixed_spans =
  [
    {
      Obs.Span.name = "analysis.estimate";
      args = [ ("app", "A") ];
      ts_ns = 1_000L;
      dur_ns = 2_500L;
      domain = 0;
      trace_id = 0L;
      span_id = 0L;
      parent_id = 0L;
    };
    {
      Obs.Span.name = "sweep.simulate";
      args = [];
      ts_ns = 2_000L;
      dur_ns = 10_000L;
      domain = 1;
      trace_id = 0L;
      span_id = 0L;
      parent_id = 0L;
    };
  ]

let test_trace_golden () =
  let expected =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
    ^ "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"contention\"}}"
    ^ ",{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"domain 0\"}}"
    ^ ",{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"domain 1\"}}"
    ^ ",{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":2.500,\"name\":\"analysis.estimate\",\"args\":{\"app\":\"A\"}}"
    ^ ",{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"dur\":10.000,\"name\":\"sweep.simulate\",\"args\":{}}"
    ^ "]}"
  in
  Alcotest.(check string) "byte-stable trace" expected
    (Obs.Trace.to_chrome_json fixed_spans);
  (* Input order must not matter: the exporter sorts. *)
  Alcotest.(check string) "order-insensitive" expected
    (Obs.Trace.to_chrome_json (List.rev fixed_spans))

let test_trace_parses () =
  (* The emitted trace must be well-formed JSON with the event list the
     Perfetto importer looks for — parsed with the serve JSON codec, which
     knows nothing about obs. *)
  match Serve.Json.of_string (Obs.Trace.to_chrome_json fixed_spans) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok (Serve.Json.Obj kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Serve.Json.Arr events) ->
          Alcotest.(check int) "metadata + spans" 5 (List.length events)
      | _ -> Alcotest.fail "traceEvents missing or not an array")
  | Ok _ -> Alcotest.fail "trace is not a JSON object"

let suite =
  [
    Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "spans off by default" `Quick test_span_disabled;
    Alcotest.test_case "span recording" `Quick test_span_records;
    Alcotest.test_case "spans across domains" `Quick test_span_multi_domain;
    Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "prometheus histogram escaping" `Quick
      test_prometheus_histogram_escaping;
    Alcotest.test_case "chrome trace golden" `Quick test_trace_golden;
    Alcotest.test_case "chrome trace parses" `Quick test_trace_parses;
  ]
