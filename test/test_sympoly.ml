open Contention

let test_known_values () =
  let es = Sympoly.all [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-9))) "e of {1,2,3}" [| 1.; 6.; 11.; 6. |] es

let test_empty () =
  Alcotest.(check (array (float 1e-9))) "empty" [| 1. |] (Sympoly.all [||]);
  Alcotest.(check (array (float 1e-9))) "up_to empty" [| 1. |] (Sympoly.up_to 3 [||])

let test_up_to_truncation () =
  let xs = [| 0.1; 0.2; 0.3; 0.4 |] in
  let full = Sympoly.all xs in
  let trunc = Sympoly.up_to 2 xs in
  Alcotest.(check int) "length" 3 (Array.length trunc);
  for j = 0 to 2 do
    Fixtures.check_float "prefix agrees" full.(j) trunc.(j)
  done;
  (* up_to beyond n clamps. *)
  Alcotest.(check int) "clamped" 5 (Array.length (Sympoly.up_to 99 xs))

let test_without () =
  let xs = [| 0.3; 0.5; 0.7 |] in
  let es = Sympoly.all xs in
  let no_mid = Sympoly.without es 0.5 in
  let expected = Sympoly.all [| 0.3; 0.7 |] in
  Alcotest.(check int) "length" (Array.length expected) (Array.length no_mid);
  Array.iteri (fun j e -> Fixtures.check_float "deconvolution" e no_mid.(j)) expected

let test_brute_force_small () =
  Fixtures.check_float "e_2 {1,2,3}" 11. (Sympoly.brute_force 2 [| 1.; 2.; 3. |]);
  Fixtures.check_float "e_0" 1. (Sympoly.brute_force 0 [| 1.; 2. |]);
  Fixtures.check_float "degree beyond n" 0. (Sympoly.brute_force 3 [| 1.; 2. |]);
  match Sympoly.brute_force (-1) [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative degree accepted"

let probs_gen =
  QCheck2.Gen.(list_size (int_range 0 8) (float_bound_inclusive 1.))

let prop_matches_brute_force =
  Fixtures.qcheck_case "all = brute force" probs_gen (fun xs ->
      let arr = Array.of_list xs in
      let es = Sympoly.all arr in
      Array.for_all Fun.id
        (Array.mapi (fun j e -> Fixtures.float_eq ~eps:1e-9 (Sympoly.brute_force j arr) e) es))

let prop_without_roundtrip =
  Fixtures.qcheck_case "without inverts extension"
    QCheck2.Gen.(pair probs_gen (float_bound_inclusive 1.))
    (fun (xs, x) ->
      let arr = Array.of_list xs in
      let extended = Array.append arr [| x |] in
      let removed = Sympoly.without (Sympoly.all extended) x in
      let direct = Sympoly.all arr in
      Array.length removed = Array.length direct
      && Array.for_all Fun.id
           (Array.mapi (fun j e -> Fixtures.float_eq ~eps:1e-7 direct.(j) e) removed))

let prop_sum_bound =
  (* For probabilities, e_1 = sum and all e_j are non-negative. *)
  Fixtures.qcheck_case "non-negative on probabilities" probs_gen (fun xs ->
      let es = Sympoly.all (Array.of_list xs) in
      Array.for_all (fun e -> e >= -1e-12) es)

let test_remove_near_cancellation () =
  (* The adversarial case for the raw deconvolution: removing an element
     close to 1 whose co-elements are many orders of magnitude smaller wipes
     out every significant digit of [e_j - x e'_(j-1)].  The guarded remove
     must detect the cancellation and recompute — bit-identical to [all] of
     the survivors. *)
  let xs = [| 0.9999999999; 1e-9; 3e-10; 1e-9 |] in
  let es = Sympoly.all xs in
  let removed = Sympoly.remove ~xs ~skip:0 es in
  let expected = Sympoly.all [| 1e-9; 3e-10; 1e-9 |] in
  Alcotest.(check int) "length" (Array.length expected) (Array.length removed);
  Array.iteri
    (fun j e ->
      if not (Float.equal e removed.(j)) then
        Alcotest.failf "degree %d: expected %.17g, got %.17g" j e removed.(j))
    expected;
  (* The raw primitive really is unstable here — the guard is not vacuous. *)
  let raw = Sympoly.without es 0.9999999999 in
  let drift =
    Float.abs (raw.(2) -. expected.(2)) /. Float.max epsilon_float expected.(2)
  in
  if drift < 1e-4 then
    Alcotest.failf "unguarded deconvolution unexpectedly accurate (drift %g)" drift

let test_remove_stable_path () =
  (* Away from cancellation the O(n) deconvolution is used and stays within
     roundoff of the direct rebuild. *)
  let xs = [| 0.3; 0.5; 0.7; 0.2 |] in
  let removed = Sympoly.remove ~xs ~skip:1 (Sympoly.all xs) in
  let expected = Sympoly.all [| 0.3; 0.7; 0.2 |] in
  Array.iteri
    (fun j e -> Fixtures.check_float ~eps:1e-12 "stable remove" e removed.(j))
    expected

let test_fold_in_roundtrip () =
  let xs = [| 0.4; 0.9; 0.1 |] in
  let folded = Sympoly.fold_in (Sympoly.all xs) 0.6 in
  let direct = Sympoly.all [| 0.4; 0.9; 0.1; 0.6 |] in
  Alcotest.(check int) "length" (Array.length direct) (Array.length folded);
  Array.iteri
    (fun j e ->
      if not (Float.equal e folded.(j)) then
        Alcotest.failf "fold_in degree %d: expected %.17g, got %.17g" j e folded.(j))
    direct;
  match Sympoly.fold_in [||] 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty basis accepted"

let extreme_probs_gen =
  (* Mixed magnitudes: the regime where deconvolution goes unstable. *)
  QCheck2.Gen.(
    list_size (int_range 1 7)
      (oneof
         [
           float_range 0.9 1.0;
           float_range 0. 1e-8;
           float_bound_inclusive 1.;
         ]))

let prop_remove_any_index =
  Fixtures.qcheck_case "guarded remove = rebuild, adversarial magnitudes"
    extreme_probs_gen
    (fun xs ->
      let arr = Array.of_list xs in
      let es = Sympoly.all arr in
      List.for_all
        (fun skip ->
          let removed = Sympoly.remove ~xs:arr ~skip es in
          let survivors =
            Array.of_list (List.filteri (fun i _ -> i <> skip) xs)
          in
          let expected = Sympoly.all survivors in
          Array.for_all2
            (fun a b -> Fixtures.float_eq ~eps:1e-9 a b)
            expected removed)
        (List.init (Array.length arr) Fun.id))

let suite =
  [
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "up_to truncation" `Quick test_up_to_truncation;
    Alcotest.test_case "without" `Quick test_without;
    Alcotest.test_case "brute force" `Quick test_brute_force_small;
    prop_matches_brute_force;
    prop_without_roundtrip;
    prop_sum_bound;
    Alcotest.test_case "remove near cancellation" `Quick test_remove_near_cancellation;
    Alcotest.test_case "remove stable path" `Quick test_remove_stable_path;
    Alcotest.test_case "fold_in roundtrip" `Quick test_fold_in_roundtrip;
    prop_remove_any_index;
  ]
