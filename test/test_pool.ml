(* The domain-pool executor behind the parallel sweep: results must be
   deterministic in the pool size, exceptions must surface on the caller, and
   degenerate inputs (empty range, more domains than work) must be safe. *)

exception Boom of int

let collatz_steps i =
  (* A task with index-dependent cost, so domains finish out of order. *)
  let rec go n steps =
    if n <= 1 then steps
    else if n mod 2 = 0 then go (n / 2) (steps + 1)
    else go ((3 * n) + 1) (steps + 1)
  in
  go (i + 27) 0

let test_matches_sequential () =
  let n = 100 in
  let expected = Array.init n collatz_steps in
  for jobs = 1 to 8 do
    let got = Exp.Pool.map_range ~jobs n collatz_steps in
    Alcotest.(check (array int))
      (Printf.sprintf "jobs=%d identical in-order results" jobs)
      expected got
  done

let test_default_jobs () =
  let got = Exp.Pool.map_range 10 (fun i -> i * i) in
  Alcotest.(check (array int)) "default jobs" (Array.init 10 (fun i -> i * i)) got

let test_empty_range () =
  Alcotest.(check (array int)) "n = 0" [||] (Exp.Pool.map_range ~jobs:4 0 (fun i -> i));
  match Exp.Pool.map_range ~jobs:4 (-1) (fun i -> i) with
  | _ -> Alcotest.fail "negative range accepted"
  | exception Invalid_argument _ -> ()

let test_more_jobs_than_items () =
  let got = Exp.Pool.map_range ~jobs:8 3 (fun i -> 10 * i) in
  Alcotest.(check (array int)) "jobs > items" [| 0; 10; 20 |] got;
  let got = Exp.Pool.map_range ~jobs:8 1 (fun i -> i + 1) in
  Alcotest.(check (array int)) "single item" [| 1 |] got

let test_invalid_jobs () =
  match Exp.Pool.map_range ~jobs:0 4 (fun i -> i) with
  | _ -> Alcotest.fail "jobs = 0 accepted"
  | exception Invalid_argument _ -> ()

let test_exception_propagates () =
  for jobs = 1 to 6 do
    match
      Exp.Pool.map_range ~jobs 50 (fun i -> if i = 17 then raise (Boom i) else i)
    with
    | _ -> Alcotest.failf "jobs=%d: worker exception swallowed" jobs
    | exception Boom 17 -> ()
    | exception e ->
        Alcotest.failf "jobs=%d: unexpected exception %s" jobs (Printexc.to_string e)
  done

let test_first_exception_deterministic () =
  (* When several tasks raise, the caller must always see the lowest-index
     failure with its payload intact — not whichever worker won the CAS
     race.  Every task raising makes index 0 the unique correct answer;
     repeat to give scheduling a chance to expose nondeterminism. *)
  Printexc.record_backtrace true;
  for _ = 1 to 25 do
    for jobs = 2 to 4 do
      match Exp.Pool.map_range ~jobs 64 (fun i -> raise (Boom i)) with
      | _ -> Alcotest.failf "jobs=%d: exception swallowed" jobs
      | exception Boom 0 -> ()
      | exception Boom i ->
          Alcotest.failf "jobs=%d: propagated task %d, not the first" jobs i
      | exception e ->
          Alcotest.failf "jobs=%d: unexpected exception %s" jobs
            (Printexc.to_string e)
    done
  done;
  (* The re-raise must carry the worker's backtrace, not a fresh one from
     the joining code: the trace names this test's raising function. *)
  let deep_raise i = raise (Boom i) in
  (match Exp.Pool.map_range ~jobs:2 8 (fun i -> deep_raise i + 1) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom 0 ->
      let bt = Printexc.get_backtrace () in
      if String.length bt = 0 then
        Alcotest.fail "backtrace lost across the domain join")

let test_exception_stops_claiming () =
  (* After the failure flag is set, workers stop pulling work, so strictly
     fewer than n tasks run.  The stop is guaranteed only eventually (the
     other domain may claim a few tasks before it sees the flag), so allow a
     handful of scheduling-dependent attempts before declaring failure. *)
  let attempt () =
    let ran = Atomic.make 0 in
    (match
       Exp.Pool.map_range ~jobs:2 10_000 (fun i ->
           Atomic.incr ran;
           if i = 0 then raise (Boom 0))
     with
    | _ -> Alcotest.fail "exception swallowed"
    | exception Boom 0 -> ());
    Atomic.get ran < 10_000
  in
  let rec try_up_to n = attempt () || (n > 1 && try_up_to (n - 1)) in
  Alcotest.(check bool) "pool drained early at least once" true (try_up_to 5)

let test_map_list () =
  let xs = [ "a"; "bb"; "ccc"; "dddd"; "" ] in
  Alcotest.(check (list int))
    "map_list preserves order" [ 1; 2; 3; 4; 0 ]
    (Exp.Pool.map_list ~jobs:3 String.length xs);
  Alcotest.(check (list int)) "map_list empty" [] (Exp.Pool.map_list ~jobs:3 String.length [])

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Exp.Pool.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "matches sequential for 1..8 domains" `Quick
      test_matches_sequential;
    Alcotest.test_case "default jobs" `Quick test_default_jobs;
    Alcotest.test_case "empty and negative range" `Quick test_empty_range;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "worker exception re-raised" `Quick test_exception_propagates;
    Alcotest.test_case "lowest-index exception wins deterministically" `Quick
      test_first_exception_deterministic;
    Alcotest.test_case "failure stops the queue" `Quick test_exception_stops_claiming;
    Alcotest.test_case "map_list" `Quick test_map_list;
    Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
  ]
