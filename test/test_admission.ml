open Contention

let app_a () = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |]
let app_b () = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |]

let test_admit_best_effort () =
  let ctl = Admission.create ~procs:3 () in
  Alcotest.(check int) "procs" 3 (Admission.procs ctl);
  (match Admission.try_admit ctl (app_a ()) Admission.best_effort with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "A rejected");
  (match Admission.try_admit ctl (app_b ()) Admission.best_effort with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "B rejected");
  Alcotest.(check int) "two admitted" 2 (List.length (Admission.admitted ctl))

let test_alone_estimate_is_isolation () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  Fixtures.check_float ~eps:1e-6 "alone = isolation" 300. (Admission.estimated_period ctl "A")

let test_shared_estimate_matches_analysis () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  ignore (Admission.try_admit ctl (app_b ()) Admission.best_effort);
  (* Composability with a single partner per node is exact: 1075/3. *)
  Fixtures.check_float ~eps:1e-6 "Per(A) shared" (1075. /. 3.)
    (Admission.estimated_period ctl "A");
  Fixtures.check_float ~eps:1e-6 "Per(B) shared" (1075. /. 3.)
    (Admission.estimated_period ctl "B");
  Fixtures.check_float ~eps:1e-6 "throughput" (3. /. 1075.)
    (Admission.estimated_throughput ctl "A")

let test_candidate_rejection () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  (* B alone would meet 1/359 but not 1/300 under sharing. *)
  match Admission.try_admit ctl (app_b ()) { min_throughput = 1. /. 310. } with
  | Admission.Rejected_candidate { estimated; required } ->
      Alcotest.(check bool) "estimate below requirement" true (estimated < required);
      Alcotest.(check int) "not admitted" 1 (List.length (Admission.admitted ctl))
  | Admission.Admitted _ -> Alcotest.fail "B admitted despite requirement"
  | Admission.Rejected_victim _ -> Alcotest.fail "wrong rejection kind"

let test_victim_rejection () =
  let ctl = Admission.create ~procs:3 () in
  (* A requires nearly its isolation throughput; admitting B would hurt A. *)
  (match Admission.try_admit ctl (app_a ()) { min_throughput = 1. /. 310. } with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "A alone rejected");
  match Admission.try_admit ctl (app_b ()) Admission.best_effort with
  | Admission.Rejected_victim { app; _ } ->
      Alcotest.(check string) "victim is A" "A" app;
      Alcotest.(check int) "B not admitted" 1 (List.length (Admission.admitted ctl))
  | Admission.Admitted _ -> Alcotest.fail "B admitted despite hurting A"
  | Admission.Rejected_candidate _ -> Alcotest.fail "wrong rejection kind"

let test_withdraw_restores () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  ignore (Admission.try_admit ctl (app_b ()) Admission.best_effort);
  Admission.withdraw ctl "B";
  Alcotest.(check int) "one left" 1 (List.length (Admission.admitted ctl));
  (* With B gone, A's estimate returns to isolation (inverse ops exact). *)
  Fixtures.check_float ~eps:1e-6 "A restored" 300. (Admission.estimated_period ctl "A");
  (* And B can come back. *)
  match Admission.try_admit ctl (app_b ()) Admission.best_effort with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "re-admission failed"

let test_duplicate_and_missing () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  (match Admission.try_admit ctl (app_a ()) Admission.best_effort with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate admitted");
  (match Admission.withdraw ctl "Z" with
  | exception Not_found -> ()
  | () -> Alcotest.fail "withdrew unknown app");
  (match Admission.estimated_period ctl "Z" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "estimated unknown app");
  match Admission.create ~procs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 procs accepted"

let test_mapping_out_of_range () =
  let ctl = Admission.create ~procs:2 () in
  match Admission.try_admit ctl (app_a ()) Admission.best_effort with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mapping beyond procs accepted"

(* Admit/withdraw in random order leaves estimates equal to a fresh
   controller with the same final population. *)
let prop_withdraw_path_independent =
  Fixtures.qcheck_case ~count:30 "withdraw path independence"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 2 in
      let mk name g =
        let g' =
          Sdf.Graph.create ~name
            ~actors:(Array.map (fun (a : Sdf.Graph.actor) -> (a.name, a.exec_time)) g.Sdf.Graph.actors)
            ~channels:(Array.map (fun (c : Sdf.Graph.channel) ->
                (c.src, c.dst, c.produce, c.consume, c.tokens)) g.Sdf.Graph.channels)
        in
        Analysis.app g' ~mapping:(Mapping.modulo ~procs g')
      in
      let a = mk "P" g1 and b = mk "Q" g2 in
      (* Controller 1: admit a, admit b, withdraw b. *)
      let c1 = Admission.create ~procs () in
      ignore (Admission.try_admit c1 a Admission.best_effort);
      ignore (Admission.try_admit c1 b Admission.best_effort);
      Admission.withdraw c1 "Q";
      (* Controller 2: admit a only. *)
      let c2 = Admission.create ~procs () in
      ignore (Admission.try_admit c2 a Admission.best_effort);
      Fixtures.float_eq ~eps:1e-6
        (Admission.estimated_period c1 "P")
        (Admission.estimated_period c2 "P"))

let suite =
  [
    Alcotest.test_case "admit best effort" `Quick test_admit_best_effort;
    Alcotest.test_case "alone = isolation" `Quick test_alone_estimate_is_isolation;
    Alcotest.test_case "shared matches analysis" `Quick test_shared_estimate_matches_analysis;
    Alcotest.test_case "candidate rejection" `Quick test_candidate_rejection;
    Alcotest.test_case "victim rejection" `Quick test_victim_rejection;
    Alcotest.test_case "withdraw restores" `Quick test_withdraw_restores;
    Alcotest.test_case "duplicate/missing" `Quick test_duplicate_and_missing;
    Alcotest.test_case "mapping range" `Quick test_mapping_out_of_range;
    prop_withdraw_path_independent;
  ]

(* Stress: random admit/withdraw sequences keep the controller consistent —
   every admitted app's estimate stays at or above its isolation period and
   the population matches the performed operations. *)
let test_random_admit_withdraw_stress () =
  let rng = Sdfgen.Rng.create 2024 in
  let params =
    { Sdfgen.Generator.default_params with actors_min = 3; actors_max = 5;
      exec_min = 2; exec_max = 25 }
  in
  let procs = 4 in
  let ctl = Admission.create ~procs () in
  let admitted = ref [] in
  for step = 1 to 40 do
    let coin = Sdfgen.Rng.int rng 3 in
    if coin < 2 || !admitted = [] then begin
      let name = Printf.sprintf "S%d" step in
      let g =
        Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name
      in
      let app = Analysis.app g ~mapping:(Mapping.modulo ~procs g) in
      match Admission.try_admit ctl app Admission.best_effort with
      | Admission.Admitted _ -> admitted := name :: !admitted
      | Admission.Rejected_candidate _ | Admission.Rejected_victim _ ->
          Alcotest.fail "best effort rejected"
    end
    else begin
      let victim = List.nth !admitted (Sdfgen.Rng.int rng (List.length !admitted)) in
      Admission.withdraw ctl victim;
      admitted := List.filter (fun n -> n <> victim) !admitted
    end;
    Alcotest.(check int) "population consistent" (List.length !admitted)
      (List.length (Admission.admitted ctl));
    List.iter
      (fun (name, (app : Analysis.app), _) ->
        let est = Admission.estimated_period ctl name in
        if est +. 1e-6 < app.isolation_period then
          Alcotest.failf "step %d: %s estimated %.3f below isolation %.3f" step name
            est app.isolation_period)
      (Admission.admitted ctl)
  done

let suite = suite @ [ Alcotest.test_case "random admit/withdraw stress" `Slow
                        test_random_admit_withdraw_stress ]

(* Section 6 feedback: observing measured periods recalibrates the controller. *)
let test_observe_measured_periods () =
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl (app_a ()) Admission.best_effort);
  ignore (Admission.try_admit ctl (app_b ()) Admission.best_effort);
  Alcotest.(check bool) "no measurement yet" true (Admission.observed_period ctl "A" = None);
  let before = Admission.estimated_period ctl "B" in
  (* The simulator showed A actually achieves 300 under sharing; but suppose
     the system observes A running at 600: A blocks its nodes half as often,
     so B's estimate must drop. *)
  Admission.observe ctl "A" ~measured_period:600.;
  Alcotest.(check bool) "measurement recorded" true
    (Admission.observed_period ctl "A" = Some 600.);
  let after = Admission.estimated_period ctl "B" in
  Alcotest.(check bool) "B estimate drops" true (after < before);
  (* P(a_i) halves from 1/3 to 1/6: B's waits halve exactly (single partner
     per node => composability is exact).  twait(b_i) = mu(a_i)/6 and b0
     fires twice per iteration: Per(B) = 300 + (2*50 + 25 + 50)/6. *)
  Fixtures.check_float ~eps:1e-6 "calibrated period" (300. +. (175. /. 6.)) after;
  (* Validation. *)
  (match Admission.observe ctl "A" ~measured_period:0. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero measurement accepted");
  match Admission.observe ctl "Z" ~measured_period:10. with
  | exception Not_found -> ()
  | () -> Alcotest.fail "unknown app observed"

let suite = suite @ [ Alcotest.test_case "observe measured periods" `Quick
                        test_observe_measured_periods ]
