(* Serve.Lru edge cases: degenerate capacities, exact eviction order, and
   concurrent access from two domains (the daemon shares one cache across
   all worker domains). *)

module Lru = Serve.Lru

let test_capacity_zero_rejected () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Serve.Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0 : (int, int) Lru.t));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Serve.Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:(-3) : (int, int) Lru.t))

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Alcotest.(check (option int)) "empty miss" None (Lru.find c "a");
  Lru.put c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find c "a");
  (* Refresh must not evict. *)
  Lru.put c "a" 2;
  Alcotest.(check (option int)) "refreshed" (Some 2) (Lru.find c "a");
  Alcotest.(check int) "length stays 1" 1 (Lru.length c);
  (* Any new key evicts the only resident. *)
  Lru.put c "b" 3;
  Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
  Alcotest.(check (option int)) "b resident" (Some 3) (Lru.find c "b");
  Alcotest.(check int) "length still 1" 1 (Lru.length c);
  Alcotest.(check int) "capacity" 1 (Lru.capacity c);
  Alcotest.(check int) "hits" 3 (Lru.hits c);
  Alcotest.(check int) "misses" 2 (Lru.misses c)

let test_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.put c 1 "one";
  Lru.put c 2 "two";
  Lru.put c 3 "three";
  (* Touch 1: recency becomes 1 > 3 > 2, so 2 is next out. *)
  Alcotest.(check (option string)) "promote 1" (Some "one") (Lru.find c 1);
  Lru.put c 4 "four";
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "one") (Lru.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "three") (Lru.find c 3);
  (* A put-refresh also promotes: refresh 4, insert two more — the
     untouched 1 then 3 go, in that order. *)
  Lru.put c 4 "four'";
  Lru.put c 5 "five";
  Alcotest.(check (option string)) "LRU 1 evicted next" None (Lru.find c 1);
  Lru.put c 6 "six";
  Alcotest.(check (option string)) "then 3" None (Lru.find c 3);
  Alcotest.(check (option string)) "4 survived both" (Some "four'")
    (Lru.find c 4);
  Alcotest.(check int) "full" 3 (Lru.length c)

let test_two_domain_interleaving () =
  (* Two domains hammer one cache with overlapping keys.  The interleaving
     is nondeterministic, so assert the invariants that must hold under any
     schedule: never over capacity, a found value is always the value some
     put stored for that key, and the hit/miss counters account for every
     find. *)
  let capacity = 8 in
  let c = Lru.create ~capacity in
  let finds_per_domain = ref [] in
  let mu = Mutex.create () in
  let worker domain_id =
    let finds = ref 0 in
    let bad = ref [] in
    for i = 0 to 4_999 do
      let k = (domain_id + i) mod 12 in
      if i mod 3 = 0 then Lru.put c k (k * 10)
      else begin
        incr finds;
        match Lru.find c k with
        | None -> ()
        | Some v when v = k * 10 -> ()
        | Some v -> bad := (k, v) :: !bad
      end;
      if Lru.length c > capacity then bad := (-1, Lru.length c) :: !bad
    done;
    Mutex.lock mu;
    finds_per_domain := !finds :: !finds_per_domain;
    Mutex.unlock mu;
    !bad
  in
  let d1 = Domain.spawn (fun () -> worker 0) in
  let d2 = Domain.spawn (fun () -> worker 5) in
  let bad = Domain.join d1 @ Domain.join d2 in
  (match bad with
  | [] -> ()
  | (k, v) :: _ ->
      Alcotest.failf "invariant broken (%d cases), first: key %d value %d"
        (List.length bad) k v);
  Alcotest.(check bool) "within capacity" true (Lru.length c <= capacity);
  let total_finds = List.fold_left ( + ) 0 !finds_per_domain in
  Alcotest.(check int) "hits + misses = finds" total_finds
    (Lru.hits c + Lru.misses c)

let suite =
  [
    Alcotest.test_case "capacity < 1 rejected" `Quick test_capacity_zero_rejected;
    Alcotest.test_case "capacity 1" `Quick test_capacity_one;
    Alcotest.test_case "eviction order with promotion" `Quick
      test_eviction_order;
    Alcotest.test_case "two-domain interleaved get/put" `Quick
      test_two_domain_interleaving;
  ]
