(* QCheck properties pinning the estimator algebra of Sections 4.1–4.2:

   - the composability operators ⊕/⊗ (Eq. 6–7) round-trip through their
     inverses (Eq. 8–9);
   - the m-th order truncation of Eq. 5 coincides with the exact Eq. 4 once
     m reaches the number of co-mapped actors;
   - on a feasible node (blocking probabilities summing to at most 1 — they
     are occupancy fractions of one processor), even-order truncations
     over-estimate and sandwich the exact value, every estimator is bounded
     by the analyzed worst case, and waiting times grow monotonically with
     any co-mapped actor's load.

   The feasibility restriction matters: Eq. 5 truncations are alternating
   series whose ordering/monotonicity guarantees need decreasing terms,
   which [sum p <= 1] provides; for infeasible loads (sum p >> 1, i.e. an
   impossible node) the second order can exceed even the worst case. *)

open QCheck2

let close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let leq ?(eps = 1e-9) a b = a <= b +. (eps *. Float.max 1. (Float.abs b))

(* Constant-execution-time load: mu = tau / 2, as in the paper's base model. *)
let constant_load p tau = Contention.Prob.make ~p ~mu:(tau /. 2.) ~tau

(* Loads of one feasible node: probabilities scaled so they sum to [budget]. *)
let feasible_gen ?(n_min = 1) ?(budget_hi = 0.98) () =
  let open Gen in
  let* n = int_range n_min 6 in
  let* raw = list_size (return n) (float_range 0.05 1.) in
  let* taus = list_size (return n) (float_range 1. 100.) in
  let* budget = float_range 0.02 budget_hi in
  let total = List.fold_left ( +. ) 0. raw in
  return (List.map2 (fun r tau -> constant_load (r /. total *. budget) tau) raw taus)

let estimators =
  [
    Contention.Analysis.Worst_case;
    Contention.Analysis.Order 2;
    Contention.Analysis.Order 4;
    Contention.Analysis.Composability;
    Contention.Analysis.Exact;
  ]

(* --- ⊕/⊗ and their inverses (Eq. 6–9) ------------------------------- *)

let prop_combine_remove_roundtrip =
  Fixtures.qcheck_case "remove inverts combine (Eq. 8-9)"
    Gen.(pair (Fixtures.load_gen ()) (Fixtures.load_gen ~max_actors:1 ()))
    (fun (loads, extra) ->
      match extra with
      | [] -> true
      | x :: _ ->
          let rest = Contention.Compose.combine_all (List.map Contention.Compose.of_load loads) in
          let x = Contention.Compose.of_load x in
          let total = Contention.Compose.combine rest x in
          let back = Contention.Compose.remove ~total x in
          close back.Contention.Compose.p rest.Contention.Compose.p
          && close back.Contention.Compose.w rest.Contention.Compose.w)

let prop_combine_commutative =
  Fixtures.qcheck_case "combine is commutative"
    Gen.(pair (Fixtures.load_gen ~max_actors:1 ()) (Fixtures.load_gen ~max_actors:1 ()))
    (fun (xs, ys) ->
      match (xs, ys) with
      | [ x ], [ y ] ->
          let a = Contention.Compose.of_load x and b = Contention.Compose.of_load y in
          let ab = Contention.Compose.combine a b
          and ba = Contention.Compose.combine b a in
          Float.equal ab.Contention.Compose.p ba.Contention.Compose.p
          && Float.equal ab.Contention.Compose.w ba.Contention.Compose.w
      | _ -> true)

let prop_combine_p_associative =
  Fixtures.qcheck_case "oplus is associative in p"
    Gen.(
      triple
        (Fixtures.load_gen ~max_actors:1 ())
        (Fixtures.load_gen ~max_actors:1 ())
        (Fixtures.load_gen ~max_actors:1 ()))
    (fun (xs, ys, zs) ->
      match (xs, ys, zs) with
      | [ x ], [ y ], [ z ] ->
          let open Contention.Compose in
          let a = of_load x and b = of_load y and c = of_load z in
          let left = combine (combine a b) c and right = combine a (combine b c) in
          close left.p right.p
      | _ -> true)

let prop_compose_is_second_order_for_pairs =
  Fixtures.qcheck_case "composability = second order on two actors"
    Gen.(pair (Fixtures.load_gen ~max_actors:1 ()) (Fixtures.load_gen ~max_actors:1 ()))
    (fun (xs, ys) ->
      match (xs, ys) with
      | [ x ], [ y ] ->
          close
            (Contention.Compose.waiting_time [ x; y ])
            (Contention.Approx.second_order [ x; y ])
      | _ -> true)

(* --- Eq. 5 truncations vs Eq. 4 -------------------------------------- *)

let prop_order_n_is_exact =
  Fixtures.qcheck_case "Order m converges to Exact at m = n"
    (Fixtures.load_gen ())
    (fun loads ->
      let n = List.length loads in
      close
        (Contention.Approx.waiting_time ~order:(Int.max 2 n) loads)
        (Contention.Exact.waiting_time loads))

let prop_even_orders_sandwich_exact =
  Fixtures.qcheck_case "feasible node: o2 >= o4 >= exact >= 0"
    (feasible_gen ())
    (fun loads ->
      let o2 = Contention.Approx.second_order loads in
      let o4 = Contention.Approx.fourth_order loads in
      let exact = Contention.Exact.waiting_time loads in
      leq exact o4 && leq o4 o2 && leq 0. exact)

let prop_bounded_by_worst_case =
  Fixtures.qcheck_case "feasible node: every estimator <= worst case"
    (feasible_gen ())
    (fun loads ->
      let wc = Contention.Wcrt.waiting_time loads in
      List.for_all
        (fun est -> leq (Contention.Analysis.waiting_time_for est loads) wc)
        estimators)

let prop_exact_matches_brute_force =
  Fixtures.qcheck_case "deconvolved Eq. 4 = subset enumeration"
    (Fixtures.load_gen ())
    (fun loads ->
      close
        (Contention.Exact.waiting_time loads)
        (Contention.Exact.waiting_time_brute_force loads))

(* --- Monotonicity in a co-mapped actor's load ------------------------ *)

let prop_monotone_in_load =
  (* Budget <= 0.45 and growth <= 2 keep the grown node feasible, where the
     truncations are provably monotone. *)
  Fixtures.qcheck_case "waiting time non-decreasing as one load grows"
    Gen.(
      let* loads = feasible_gen ~budget_hi:0.45 () in
      let* j = int_range 0 (List.length loads - 1) in
      let* s = float_range 1. 2. in
      return (loads, j, s))
    (fun (loads, j, s) ->
      let grown =
        List.mapi
          (fun i (l : Contention.Prob.t) ->
            if i = j then constant_load (l.p *. s) (l.tau *. s) else l)
          loads
      in
      List.for_all
        (fun est ->
          leq
            (Contention.Analysis.waiting_time_for est loads)
            (Contention.Analysis.waiting_time_for est grown))
        estimators)

let suite =
  [
    prop_combine_remove_roundtrip;
    prop_combine_commutative;
    prop_combine_p_associative;
    prop_compose_is_second_order_for_pairs;
    prop_order_n_is_exact;
    prop_even_orders_sandwich_exact;
    prop_bounded_by_worst_case;
    prop_exact_matches_brute_force;
    prop_monotone_in_load;
  ]
