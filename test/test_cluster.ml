(* The sharded serve cluster: endpoint parsing, consistent-hash ring
   properties (determinism, balance, minimal remapping), the blocking
   client pool's reconnect behaviour, server-side backpressure (shed
   verdicts under a full accept queue), peer cache replication via
   cache-put and the hot-entry hook, client timeouts against a
   non-accepting socket, and the open-loop load generator end-to-end
   against live shards — both under capacity (zero errors) and at
   saturation (shed verdicts, no crash). *)

module Json = Serve.Json
module Protocol = Serve.Protocol
module Endpoint = Cluster.Endpoint
module Ring = Cluster.Ring
module Pool = Cluster.Pool
module Router = Cluster.Router
module Loadgen = Cluster.Loadgen

let unwrap = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (_ : string) -> ()

let small_workload ?(seed = 7) () =
  Exp.Workload.make ~seed ~num_apps:3 ~procs:2 ()

(* --- endpoints ------------------------------------------------------- *)

let test_endpoint () =
  let roundtrip s =
    Alcotest.(check string) ("round-trip " ^ s) s
      (Endpoint.to_string (unwrap (Endpoint.of_string s)))
  in
  roundtrip "127.0.0.1:4557";
  roundtrip "example.org:80";
  roundtrip "unix:/tmp/shard.sock";
  (match unwrap (Endpoint.of_string ":9090") with
  | Endpoint.Tcp { host; port } ->
      Alcotest.(check string) "default host" "127.0.0.1" host;
      Alcotest.(check int) "port" 9090 port
  | Endpoint.Unix_sock _ -> Alcotest.fail "parsed as unix socket");
  List.iter
    (fun bad -> expect_error bad (Endpoint.of_string bad))
    [ ""; "unix:"; "nocolon"; "host:0"; "host:65536"; "host:x" ];
  let peers = unwrap (Endpoint.parse_list "a:1, b:2 ,unix:/s.sock") in
  Alcotest.(check int) "three peers" 3 (List.length peers);
  expect_error "duplicate" (Endpoint.parse_list "a:1,b:2,a:1");
  expect_error "empty list" (Endpoint.parse_list " , ");
  let file = Filename.temp_file "peers" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc "# cluster\n127.0.0.1:4557\n\nunix:/tmp/b.sock\n");
      let peers = unwrap (Endpoint.load_file file) in
      Alcotest.(check (list string))
        "file peers"
        [ "127.0.0.1:4557"; "unix:/tmp/b.sock" ]
        (List.map Endpoint.to_string peers));
  expect_error "missing file" (Endpoint.load_file "/nonexistent/peers.txt")

(* --- ring ------------------------------------------------------------ *)

let four_peers = [ "10.0.0.1:4557"; "10.0.0.2:4557"; "10.0.0.3:4557"; "10.0.0.4:4557" ]

let random_digests n =
  Array.init n (fun i -> Digest.to_hex (Digest.string (string_of_int i)))

let test_ring_determinism () =
  let r1 = Ring.create four_peers in
  let r2 = Ring.create four_peers in
  let keys = random_digests 1_000 in
  Array.iter
    (fun k ->
      Alcotest.(check string) "same owner" (Ring.lookup r1 k) (Ring.lookup r2 k))
    keys;
  (try
     ignore (Ring.create [] : Ring.t);
     Alcotest.fail "empty peer list accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Ring.create [ "a:1"; "a:1" ] : Ring.t);
    Alcotest.fail "duplicate peer accepted"
  with Invalid_argument _ -> ()

let test_ring_balance () =
  let ring = Ring.create four_peers in
  let n = 10_000 in
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun k ->
      let p = Ring.lookup ring k in
      Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)))
    (random_digests n);
  let ideal = float_of_int n /. 4. in
  List.iter
    (fun p ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts p) in
      let dev = Float.abs (float_of_int c -. ideal) /. ideal in
      if dev > 0.15 then
        Alcotest.failf "peer %s owns %d of %d keys (%.1f%% off ideal)" p c n
          (100. *. dev))
    four_peers

let test_ring_remove_remaps_minimally () =
  let ring = Ring.create four_peers in
  let removed = List.nth four_peers 2 in
  let ring' = Ring.remove ring removed in
  Alcotest.(check (list string))
    "peer list shrinks"
    (List.filter (fun p -> p <> removed) four_peers)
    (Ring.peers ring');
  let moved = ref 0 in
  Array.iter
    (fun k ->
      let before = Ring.lookup ring k in
      let after = Ring.lookup ring' k in
      if before = removed then begin
        incr moved;
        if after = removed then Alcotest.fail "key still owned by removed peer"
      end
      else
        Alcotest.(check string) "unaffected key kept its owner" before after)
    (random_digests 10_000);
  if !moved = 0 then Alcotest.fail "removed peer owned no keys";
  (* Removing an unknown peer is a no-op; removing the last is an error. *)
  Alcotest.(check (list string))
    "unknown removal is a no-op" (Ring.peers ring')
    (Ring.peers (Ring.remove ring' "unknown:1"));
  let solo = Ring.create [ "a:1" ] in
  try
    ignore (Ring.remove solo "a:1" : Ring.t);
    Alcotest.fail "removed the last peer"
  with Invalid_argument _ -> ()

let test_ring_successors () =
  let ring = Ring.create four_peers in
  Array.iter
    (fun k ->
      let succ = Ring.successors ring k in
      Alcotest.(check int) "all peers listed" 4 (List.length succ);
      Alcotest.(check string) "head is the owner" (Ring.lookup ring k)
        (List.hd succ);
      Alcotest.(check (list string))
        "distinct peers" (List.sort_uniq compare succ)
        (List.sort compare succ))
    (random_digests 50)

(* --- live-server helpers --------------------------------------------- *)

let next_sock = Atomic.make 0

let fresh_sock_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "contention-cluster-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add next_sock 1))

let start_server ?on_hot ?(jobs = 2) ?(max_queue = 1024) ?(hot_threshold = 0)
    ?unix_path () =
  let config =
    {
      Serve.Server.default_config with
      port = (if unix_path = None then Some 0 else None);
      unix_path;
      jobs = Some jobs;
      cache_capacity = 16;
      max_queue;
      hot_threshold;
    }
  in
  Serve.Server.start ?on_hot ~config ()

let tcp_endpoint server =
  Endpoint.Tcp
    { host = "127.0.0.1"; port = Option.get (Serve.Server.tcp_port server) }

let gauge_value registry name =
  List.find_map
    (fun (e : Obs.Metric.exposed) ->
      if e.e_name <> name then None
      else
        match e.e_series with
        | (_, Obs.Metric.Sample v) :: _ -> Some v
        | _ -> None)
    (Obs.Metric.export registry)

let poll ~what ?(attempts = 200) pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go (n - 1)
    end
  in
  go attempts

(* --- pool: reconnect across a server restart ------------------------- *)

let test_pool_reconnect () =
  let path = fresh_sock_path () in
  let server1 = start_server ~unix_path:path () in
  let pool = Pool.create ~size:2 ~timeout:2. (Endpoint.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Pool.close pool)
    (fun () ->
      unwrap (Pool.with_client pool Serve.Client.ping);
      Alcotest.(check int) "no reconnects yet" 0 (Pool.reconnects pool);
      Serve.Server.stop server1;
      (* Same address, new process lifetime: the pooled connection is now
         stale and the next use must transparently redial. *)
      let server2 = start_server ~unix_path:path () in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop server2)
        (fun () ->
          unwrap (Pool.with_client pool Serve.Client.ping);
          if Pool.reconnects pool < 1 then
            Alcotest.fail "stale connection was not replaced"))

(* --- backpressure: shed verdict when the accept queue is full -------- *)

let test_shed_verdict () =
  let server = start_server ~jobs:1 ~max_queue:1 () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () ->
      let port = Option.get (Serve.Server.tcp_port server) in
      let connect () = unwrap (Serve.Client.connect ~port ()) in
      (* A completed round-trip pins the single worker to this client. *)
      let a = connect () in
      unwrap (Serve.Client.ping a);
      (* B lands in the accept queue (depth 1 = the bound). *)
      let b = connect () in
      poll ~what:"queued connection" (fun () ->
          gauge_value
            (Serve.Server.metrics_registry server)
            "contention_serve_queue_depth"
          = Some 1.);
      (* C must be refused with a shed verdict, not queued or dropped. *)
      let c = connect () in
      (match
         Serve.Client.request_classified c
           (Protocol.request_to_json Protocol.Ping)
       with
      | Ok (Protocol.Reply_shed { queue_depth }) ->
          Alcotest.(check int) "reported depth" 1 queue_depth
      | Ok (Protocol.Reply_ok _) -> Alcotest.fail "served beyond the bound"
      | Ok (Protocol.Reply_error msg) -> Alcotest.failf "error, not shed: %s" msg
      | Error msg -> Alcotest.failf "transport error, not shed: %s" msg);
      Serve.Client.close c;
      (* Freeing the worker drains the queue: B gets served, and the shed
         shows up in the stats counters. *)
      Serve.Client.close a;
      unwrap (Serve.Client.ping b);
      let stats = unwrap (Serve.Client.stats b) in
      Alcotest.(check int) "queue capacity" 1 stats.Protocol.queue_capacity;
      if stats.Protocol.shed < 1 then Alcotest.fail "shed not counted";
      Serve.Client.close b)

(* --- cache-put: peer cache replication ------------------------------- *)

let test_cache_put () =
  let server = start_server () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () ->
      let port = Option.get (Serve.Server.tcp_port server) in
      let c = unwrap (Serve.Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let w = small_workload () in
          let up = unwrap (Serve.Client.upload c ~payload:(Exp.Workload.to_string w)) in
          let digest = up.Protocol.digest in
          let mask = Contention.Usecase.full ~napps:3 in
          let rows =
            [
              {
                Protocol.app = "a0";
                period = 10.;
                isolation_period = 8.;
                throughput = 0.1;
              };
            ]
          in
          (* Valid install: the next estimate answers from cache with the
             forwarded rows, proving the key was canonicalised to match. *)
          unwrap
            (Serve.Client.cache_put c ~digest ~mask ~estimator:"o2" ~rows);
          let e =
            unwrap
              (Serve.Client.estimate c ~digest
                 ~estimator:(Contention.Analysis.Order 2) ())
          in
          if not e.Protocol.cached then
            Alcotest.fail "installed entry missed the cache";
          Alcotest.(check int) "forwarded rows served" 1 (List.length e.rows);
          (match e.rows with
          | [ row ] -> Alcotest.(check string) "row content" "a0" row.app
          | _ -> ());
          (* Rejections: unknown digest, bad estimator, bad mask. *)
          expect_error "unknown digest"
            (Serve.Client.cache_put c ~digest:"feedface" ~mask ~estimator:"o2"
               ~rows);
          expect_error "bad estimator"
            (Serve.Client.cache_put c ~digest ~mask ~estimator:"nonsense" ~rows);
          expect_error "mask out of range"
            (Serve.Client.cache_put c ~digest ~mask:(1 lsl 20) ~estimator:"o2"
               ~rows);
          expect_error "negative mask"
            (Serve.Client.cache_put c ~digest ~mask:(-1) ~estimator:"o2" ~rows)))

(* --- hot-entry forwarding: server hook -> router -> peer cache ------- *)

let test_hot_forwarding () =
  let wiring = ref None in
  let on_hot_for self entry =
    match !wiring with
    | Some router -> Router.forward_hot router ~self:(Some self) entry
    | None -> ()
  in
  let self_a = ref None and self_b = ref None in
  let server_a =
    start_server ~hot_threshold:2
      ~on_hot:(fun e -> Option.iter (fun s -> on_hot_for s e) !self_a)
      ()
  in
  let server_b =
    start_server ~hot_threshold:2
      ~on_hot:(fun e -> Option.iter (fun s -> on_hot_for s e) !self_b)
      ()
  in
  let ep_a = tcp_endpoint server_a and ep_b = tcp_endpoint server_b in
  self_a := Some ep_a;
  self_b := Some ep_b;
  let router = Router.create ~pool_size:1 ~timeout:5. [ ep_a; ep_b ] in
  wiring := Some router;
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      Serve.Server.stop server_a;
      Serve.Server.stop server_b)
    (fun () ->
      let w = small_workload () in
      let up = unwrap (Router.upload router ~payload:(Exp.Workload.to_string w)) in
      let digest = up.Protocol.digest in
      let owner, other =
        if Ring.lookup (Router.ring router) digest = Endpoint.to_string ep_a
        then (server_a, server_b)
        else (server_b, server_a)
      in
      let estimator = Contention.Analysis.Order 2 in
      let port = Option.get (Serve.Server.tcp_port owner) in
      let c = unwrap (Serve.Client.connect ~port ()) in
      let e1 =
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let e1 = unwrap (Serve.Client.estimate c ~digest ~estimator ()) in
            (* Second request crosses hot_threshold = 2 and fires the hook. *)
            ignore
              (unwrap (Serve.Client.estimate c ~digest ~estimator ())
                : Protocol.estimate_reply);
            e1)
      in
      poll ~what:"hot-entry forward" (fun () -> fst (Router.forward_counts router) >= 1);
      (* The peer must now answer from cache without ever having computed
         the estimate itself, with bit-identical rows. *)
      let port = Option.get (Serve.Server.tcp_port other) in
      let c = unwrap (Serve.Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let e2 = unwrap (Serve.Client.estimate c ~digest ~estimator ()) in
          if not e2.Protocol.cached then
            Alcotest.fail "peer did not serve the forwarded entry from cache";
          List.iter2
            (fun (r1 : Protocol.estimate_row) (r2 : Protocol.estimate_row) ->
              Alcotest.(check string) "app" r1.app r2.app;
              if
                Int64.bits_of_float r1.period
                <> Int64.bits_of_float r2.period
              then Alcotest.failf "period of %s differs across peers" r1.app)
            e1.Protocol.rows e2.Protocol.rows))

(* --- client timeout against a non-accepting socket ------------------- *)

let test_client_timeout () =
  let path = fresh_sock_path () in
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX path);
      Unix.listen listener 1;
      (* The kernel backlog completes the connect, but nobody will ever
         accept or reply: only the read deadline gets the client out. *)
      let c = unwrap (Serve.Client.connect_unix ~timeout:0.3 path) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let t0 = Obs.Clock.now_ns () in
          (match Serve.Client.ping c with
          | Ok () -> Alcotest.fail "ping succeeded with no server"
          | Error msg ->
              Alcotest.(check string) "clean timeout error" "transport: timeout"
                msg);
          let elapsed = Obs.Clock.elapsed_s ~since:t0 in
          if elapsed > 5. then
            Alcotest.failf "timeout took %.1fs for a 0.3s deadline" elapsed))

(* --- router: routing and failover ------------------------------------ *)

let test_router_failover () =
  let server_a = start_server () and server_b = start_server () in
  let ep_a = tcp_endpoint server_a and ep_b = tcp_endpoint server_b in
  let router = Router.create ~pool_size:2 ~timeout:2. [ ep_a; ep_b ] in
  let stopped = ref false in
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      Serve.Server.stop server_a;
      if not !stopped then Serve.Server.stop server_b)
    (fun () ->
      let w = small_workload () in
      let up = unwrap (Router.upload router ~payload:(Exp.Workload.to_string w)) in
      let digest = up.Protocol.digest in
      let estimator = Contention.Analysis.Order 2 in
      (match Router.estimate router ~digest ~estimator () with
      | Router.Served reply ->
          Alcotest.(check int) "rows" 3 (List.length reply.Protocol.rows)
      | Router.Shed _ -> Alcotest.fail "shed on an idle cluster"
      | Router.Failed msg -> Alcotest.failf "estimate failed: %s" msg);
      (* Kill the digest's owner: the router must fail over to the
         surviving peer, which has the workload thanks to the broadcast
         upload. *)
      let owner_name = Ring.lookup (Router.ring router) digest in
      let owner, _survivor =
        if owner_name = Endpoint.to_string ep_a then (server_a, server_b)
        else (server_b, server_a)
      in
      if owner == server_b then begin
        Serve.Server.stop server_b;
        stopped := true
      end
      else Serve.Server.stop server_a;
      (* The dead owner's pool burns its dial backoff, then the next ring
         peer serves the estimate. *)
      if owner == server_a then begin
        (* keep finally from double-stopping a *)
        ()
      end;
      match Router.estimate router ~digest ~estimator () with
      | Router.Served reply ->
          Alcotest.(check int) "rows after failover" 3
            (List.length reply.Protocol.rows)
      | Router.Shed _ -> Alcotest.fail "shed after failover"
      | Router.Failed msg -> Alcotest.failf "failover failed: %s" msg)

(* --- loadgen: burst under capacity, then saturation ------------------ *)

let test_loadgen_burst () =
  let server_a = start_server () and server_b = start_server () in
  let router =
    Router.create ~pool_size:2 ~timeout:5.
      [ tcp_endpoint server_a; tcp_endpoint server_b ]
  in
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      Serve.Server.stop server_a;
      Serve.Server.stop server_b)
    (fun () ->
      let digests =
        Array.init 4 (fun i ->
            let w = small_workload ~seed:(100 + i) () in
            (unwrap (Router.upload router ~payload:(Exp.Workload.to_string w)))
              .Protocol.digest)
      in
      let config =
        {
          Loadgen.rate = 200.;
          duration_s = 0.5;
          concurrency = 4;
          arrival = Loadgen.Poisson;
          skew = 1.0;
          seed = 42;
          estimator = Contention.Analysis.Order 2;
          trace_sample = 0;
        }
      in
      let registry = Obs.Metric.create_registry () in
      let report = Loadgen.run ~registry config ~router ~digests in
      Alcotest.(check int) "offered = rate x duration" 100 report.Loadgen.offered;
      Alcotest.(check int) "all served" 100 report.Loadgen.ok;
      Alcotest.(check int) "no errors" 0 report.Loadgen.errors;
      Alcotest.(check int) "no sheds under capacity" 0 report.Loadgen.shed;
      if report.Loadgen.p50_ms <= 0. then Alcotest.fail "no latency measured";
      if report.Loadgen.p99_ms < report.Loadgen.p50_ms then
        Alcotest.fail "p99 below p50";
      (* The harness's own telemetry captured every served request. *)
      (match
         List.find_opt
           (fun (e : Obs.Metric.exposed) ->
             e.e_name = "contention_loadgen_latency_seconds")
           (Obs.Metric.export registry)
       with
      | Some { e_series = [ (_, Obs.Metric.Buckets { count; _ }) ]; _ } ->
          Alcotest.(check int) "histogram count" 100 count
      | _ -> Alcotest.fail "latency histogram missing");
      (* And the report renders to the bench schema. *)
      match Json.of_string (Json.to_string (Loadgen.report_to_json report)) with
      | Ok (Json.Obj kvs) ->
          Alcotest.(check bool) "schema tag" true
            (List.mem_assoc "schema" kvs && List.mem_assoc "loadgen" kvs)
      | _ -> Alcotest.fail "report JSON does not round-trip")

let test_loadgen_saturation () =
  (* One worker, queue bound 1, but four connections' worth of demand: the
     overflow must surface as shed verdicts (and possibly timeouts), never
     as unbounded queueing or a dead server. *)
  let server = start_server ~jobs:1 ~max_queue:1 () in
  let router =
    Router.create ~pool_size:8 ~timeout:0.5 [ tcp_endpoint server ]
  in
  let router_closed = ref false in
  let close_router () =
    if not !router_closed then begin
      router_closed := true;
      Router.close router
    end
  in
  Fun.protect
    ~finally:(fun () ->
      close_router ();
      Serve.Server.stop server)
    (fun () ->
      let w = small_workload ~seed:200 () in
      let digest =
        (unwrap (Router.upload router ~payload:(Exp.Workload.to_string w)))
          .Protocol.digest
      in
      (* Demand must overlap for the pool to open extra connections at all:
         with one fast worker and sparse arrivals a single pooled connection
         absorbs everything and nothing ever queues.  Eight threads at
         2000 req/s guarantee concurrent checkouts, so dials pile into the
         bounded accept queue and overflow into sheds. *)
      let config =
        {
          Loadgen.rate = 2000.;
          duration_s = 0.5;
          concurrency = 8;
          arrival = Loadgen.Uniform;
          skew = 0.;
          seed = 7;
          estimator = Contention.Analysis.Order 2;
          trace_sample = 0;
        }
      in
      let report =
        Loadgen.run
          ~registry:(Obs.Metric.create_registry ())
          config ~router ~digests:[| digest |]
      in
      if report.Loadgen.shed = 0 then
        Alcotest.fail "saturation produced no shed verdicts";
      if report.Loadgen.ok = 0 then
        Alcotest.fail "saturation starved every request";
      (* The server survived and owns the books: its shed counter saw what
         the clients saw.  Close the router first (its idle pooled
         connections still pin the worker and fill the queue), then keep
         probing: until the dead connections drain, a fresh probe can
         itself be shed — which is the backpressure working, not a
         failure. *)
      close_router ();
      let port = Option.get (Serve.Server.tcp_port server) in
      let rec probe_stats attempts =
        let c = unwrap (Serve.Client.connect ~port ()) in
        let r =
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () -> Serve.Client.stats c)
        in
        match r with
        | Ok stats -> stats
        | Error msg when attempts > 0 ->
            ignore (msg : string);
            Unix.sleepf 0.02;
            probe_stats (attempts - 1)
        | Error msg -> Alcotest.failf "server unreachable after drain: %s" msg
      in
      let stats = probe_stats 200 in
      if stats.Protocol.shed < report.Loadgen.shed then
        Alcotest.failf "server counted %d sheds, clients saw %d"
          stats.Protocol.shed report.Loadgen.shed)

(* --- protocol: cache-put codec and the shed envelope ----------------- *)

let test_protocol_shed_and_cache_put () =
  let req =
    Protocol.Cache_put
      {
        digest = "cafebabe";
        mask = 5;
        estimator = "second-order";
        rows =
          [
            {
              Protocol.app = "x";
              period = 1.5;
              isolation_period = 1.25;
              throughput = 0.625;
            };
          ];
      }
  in
  (match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok req' -> Alcotest.(check bool) "cache-put round-trip" true (req = req')
  | Error msg -> Alcotest.failf "cache-put does not round-trip: %s" msg);
  (match Protocol.classify_reply (Protocol.shed ~queue_depth:7) with
  | Protocol.Reply_shed { queue_depth } ->
      Alcotest.(check int) "shed depth" 7 queue_depth
  | _ -> Alcotest.fail "shed envelope misclassified");
  (match Protocol.classify_reply (Protocol.ok (Json.Num 1.)) with
  | Protocol.Reply_ok (Json.Num 1.) -> ()
  | _ -> Alcotest.fail "ok envelope misclassified");
  (match Protocol.classify_reply (Protocol.error "boom") with
  | Protocol.Reply_error "boom" -> ()
  | _ -> Alcotest.fail "error envelope misclassified");
  (match Protocol.classify_reply (Json.Obj []) with
  | Protocol.Reply_error _ -> ()
  | _ -> Alcotest.fail "junk envelope not an error");
  (* Shed-unaware callers degrade to an error mentioning the shed. *)
  match Protocol.unwrap_reply (Protocol.shed ~queue_depth:3) with
  | Error msg when String.length msg >= 4 && String.sub msg 0 4 = "shed" -> ()
  | Error msg -> Alcotest.failf "shed mapped to unrelated error: %s" msg
  | Ok _ -> Alcotest.fail "shed unwrapped as success"

let suite =
  [
    Alcotest.test_case "endpoint parsing" `Quick test_endpoint;
    Alcotest.test_case "ring determinism" `Quick test_ring_determinism;
    Alcotest.test_case "ring balance (4 shards, 10k keys)" `Quick
      test_ring_balance;
    Alcotest.test_case "ring minimal remapping" `Quick
      test_ring_remove_remaps_minimally;
    Alcotest.test_case "ring successors" `Quick test_ring_successors;
    Alcotest.test_case "protocol shed + cache-put" `Quick
      test_protocol_shed_and_cache_put;
    Alcotest.test_case "pool reconnect" `Quick test_pool_reconnect;
    Alcotest.test_case "shed verdict" `Quick test_shed_verdict;
    Alcotest.test_case "cache-put replication" `Quick test_cache_put;
    Alcotest.test_case "hot-entry forwarding" `Quick test_hot_forwarding;
    Alcotest.test_case "client timeout" `Quick test_client_timeout;
    Alcotest.test_case "router failover" `Quick test_router_failover;
    Alcotest.test_case "loadgen burst" `Quick test_loadgen_burst;
    Alcotest.test_case "loadgen saturation" `Quick test_loadgen_saturation;
  ]
