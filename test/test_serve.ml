(* The contention serve daemon: unit tests for the store, the LRU cache,
   the metrics and the protocol codecs, robustness of a live server against
   malformed input, and the end-to-end integration scenario — two
   concurrent clients driving upload → estimate (cache hit on the second) →
   admit → reject-victim → release → stats, with the served numbers agreeing
   bit-for-bit with direct Contention.Analysis calls, and a clean shutdown. *)

module Json = Serve.Json
module Protocol = Serve.Protocol

let small_workload () = Exp.Workload.make ~seed:7 ~num_apps:3 ~procs:2 ()

let unwrap = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error reply" what
  | Error (_ : string) -> ()

(* --- store ----------------------------------------------------------- *)

let test_store () =
  let s = Serve.Store.create () in
  let w = small_workload () in
  let d = Serve.Store.add s w in
  Alcotest.(check string) "digest is stable" d (Serve.Store.digest_of w);
  Alcotest.(check int) "one entry" 1 (Serve.Store.count s);
  (* Re-adding the same content lands on the same address. *)
  let w' = unwrap (Exp.Workload.of_string (Exp.Workload.to_string w)) in
  Alcotest.(check string) "content-addressed" d (Serve.Store.add s w');
  Alcotest.(check int) "still one entry" 1 (Serve.Store.count s);
  (match Serve.Store.find s d with
  | Some found ->
      Alcotest.(check string) "find returns the workload"
        (Exp.Workload.to_string w)
        (Exp.Workload.to_string found)
  | None -> Alcotest.fail "digest not found");
  (match Serve.Store.find s "feedfacefeedfacefeedfacefeedface" with
  | None -> ()
  | Some _ -> Alcotest.fail "bogus digest found");
  let other = Exp.Workload.make ~seed:8 ~num_apps:3 ~procs:2 () in
  if Serve.Store.add s other = d then
    Alcotest.fail "different workloads share a digest";
  Alcotest.(check int) "two entries" 2 (Serve.Store.count s)

(* --- lru ------------------------------------------------------------- *)

let test_lru () =
  (try
     ignore (Serve.Lru.create ~capacity:0 : (int, int) Serve.Lru.t);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ());
  let c = Serve.Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Serve.Lru.find c "a");
  Serve.Lru.put c "a" 1;
  Serve.Lru.put c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Serve.Lru.find c "a");
  (* "b" is now least-recently-used; inserting "c" evicts it. *)
  Serve.Lru.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Serve.Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Serve.Lru.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Serve.Lru.find c "c");
  Serve.Lru.put c "c" 33;
  Alcotest.(check (option int)) "refresh in place" (Some 33)
    (Serve.Lru.find c "c");
  Alcotest.(check int) "length" 2 (Serve.Lru.length c);
  Alcotest.(check int) "capacity" 2 (Serve.Lru.capacity c);
  Alcotest.(check int) "hits" 4 (Serve.Lru.hits c);
  Alcotest.(check int) "misses" 2 (Serve.Lru.misses c)

(* --- metrics --------------------------------------------------------- *)

let test_metrics () =
  let m = Serve.Metrics.create () in
  let s0 = Serve.Metrics.snapshot m in
  Alcotest.(check int) "no requests yet" 0 s0.requests_total;
  Alcotest.(check (float 0.)) "latency zero before requests" 0.
    s0.latency_mean_us;
  Serve.Metrics.incr_connections m;
  for _ = 1 to 10 do
    Serve.Metrics.record m ~cmd:"estimate" ~latency_s:1e-3
  done;
  Serve.Metrics.record m ~cmd:"ping" ~latency_s:11e-3;
  Serve.Metrics.record_admission_verdict m (Protocol.Admitted { throughput = 1.; margin = None });
  Serve.Metrics.record_admission_verdict m
    (Protocol.Rejected_victim { victim = "A"; estimated = 0.; required = 1. });
  Serve.Metrics.incr_released m;
  let s = Serve.Metrics.snapshot m in
  Alcotest.(check int) "connections" 1 s.connections;
  Alcotest.(check int) "total" 11 s.requests_total;
  Alcotest.(check (list (pair string int)))
    "per-command counters"
    [ ("estimate", 10); ("ping", 1) ]
    s.requests;
  Alcotest.(check int) "admitted" 1 s.admitted;
  Alcotest.(check int) "rejected victim" 1 s.rejected_victim;
  Alcotest.(check int) "released" 1 s.released;
  Alcotest.(check int) "samples" 11 s.latency_samples;
  Fixtures.check_float ~eps:1e-6 "mean"
    ((10. *. 1000.) +. 11_000.) (s.latency_mean_us *. 11.);
  Fixtures.check_float ~eps:1e-6 "p50" 1000. s.latency_p50_us;
  Fixtures.check_float ~eps:1e-6 "max" 11_000. s.latency_max_us;
  if s.latency_p99_us < s.latency_p50_us then
    Alcotest.fail "p99 below p50"

(* --- protocol codecs ------------------------------------------------- *)

let test_protocol_roundtrip () =
  let requests =
    [
      Protocol.Ping;
      Protocol.Upload { payload = "line1\nline2\n" };
      Protocol.Estimate
        { digest = "abc"; usecase = None; estimator = Contention.Analysis.Order 2 };
      Protocol.Estimate
        {
          digest = "abc";
          usecase = Some [ "A"; "C" ];
          estimator = Contention.Analysis.Exact;
        };
      Protocol.Admit
        {
          session = "s";
          digest = "abc";
          app = "A";
          min_throughput = 0.25;
          confidence = None;
          margin_method = None;
        };
      Protocol.Admit
        {
          session = "s";
          digest = "abc";
          app = "A";
          min_throughput = 0.25;
          confidence = Some 0.95;
          margin_method = Some Contention.Margin.Quantile;
        };
      Protocol.Release { session = "s"; app = "A" };
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      let j = Protocol.request_to_json r in
      (* Through the actual wire representation, not just the tree. *)
      match Json.of_string (Json.to_string j) with
      | Error e -> Alcotest.failf "wire reparse: %s" e
      | Ok j' -> (
          match Protocol.request_of_json j' with
          | Ok r' when r = r' -> ()
          | Ok _ -> Alcotest.fail "request changed in flight"
          | Error e -> Alcotest.failf "request_of_json: %s" e))
    requests;
  let verdicts =
    [
      Protocol.Admitted { throughput = 0.1; margin = None };
      Protocol.Rejected_candidate { estimated = 0.1; required = 0.2 };
      Protocol.Rejected_victim { victim = "B"; estimated = 0.1; required = 0.2 };
    ]
  in
  List.iter
    (fun v ->
      match Protocol.verdict_of_json (Protocol.verdict_to_json v) with
      | Ok v' when v = v' -> ()
      | Ok _ -> Alcotest.fail "verdict changed in flight"
      | Error e -> Alcotest.failf "verdict_of_json: %s" e)
    verdicts

let test_estimator_names () =
  let ok name expected =
    match Protocol.estimator_of_string name with
    | Ok e when e = expected -> ()
    | Ok _ -> Alcotest.failf "%S resolved to the wrong estimator" name
    | Error e -> Alcotest.failf "%S: %s" name e
  in
  ok "worst-case" Contention.Analysis.Worst_case;
  ok "wc" Contention.Analysis.Worst_case;
  ok "second-order" (Contention.Analysis.Order 2);
  ok "o2" (Contention.Analysis.Order 2);
  ok "o4" (Contention.Analysis.Order 4);
  ok "6" (Contention.Analysis.Order 6);
  ok "order-8" (Contention.Analysis.Order 8);
  ok "comp" Contention.Analysis.Composability;
  ok "exact" Contention.Analysis.Exact;
  List.iter
    (fun bad ->
      match Protocol.estimator_of_string bad with
      | Error (_ : string) -> ()
      | Ok _ -> Alcotest.failf "%S accepted" bad)
    [ "1"; "0"; "-2"; "garbage"; "" ]

(* --- live-server helpers --------------------------------------------- *)

let with_server ?(cache_capacity = 16) ?(max_line = 64 * 1024) f =
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      unix_path = None;
      jobs = Some 2;
      cache_capacity;
      max_line;
    }
  in
  let server = Serve.Server.start ~config () in
  let port = Option.get (Serve.Server.tcp_port server) in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) (fun () -> f server port)

let with_client port f =
  let c = unwrap (Serve.Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

(* A raw TCP connection for speaking deliberately broken protocol. *)
let with_raw_conn port f =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      f fd)

let raw_roundtrip fd line =
  Serve.Wire.write_line fd line;
  match Serve.Wire.read_frame (Serve.Wire.reader fd) with
  | Serve.Wire.Line reply -> reply
  | Serve.Wire.Eof -> Alcotest.fail "connection dropped instead of replying"
  | Serve.Wire.Too_long -> Alcotest.fail "oversized reply"

let expect_error_reply what reply =
  match Json.of_string reply with
  | Ok (Json.Obj kvs) when List.mem_assoc "error" kvs -> ()
  | _ -> Alcotest.failf "%s: expected an error reply, got %s" what reply

(* --- robustness: a misbehaving client gets error replies, the server
   lives on ------------------------------------------------------------ *)

let test_robustness () =
  with_server ~max_line:4096 (fun _server port ->
      with_raw_conn port (fun fd ->
          expect_error_reply "malformed JSON" (raw_roundtrip fd "not json{");
          expect_error_reply "non-object frame" (raw_roundtrip fd "[1,2]");
          expect_error_reply "missing cmd" (raw_roundtrip fd {|{"x": 1}|});
          expect_error_reply "unknown command"
            (raw_roundtrip fd {|{"cmd": "frobnicate"}|});
          expect_error_reply "wrong field type"
            (raw_roundtrip fd {|{"cmd": "upload", "payload": 42}|});
          expect_error_reply "unknown digest"
            (raw_roundtrip fd
               {|{"cmd": "estimate", "digest": "deadbeef", "estimator": "o2"}|});
          expect_error_reply "bad estimator"
            (raw_roundtrip fd
               {|{"cmd": "estimate", "digest": "deadbeef", "estimator": "o3"}|});
          (* A truncated Workload.save payload is a protocol error, not a
             crash. *)
          let payload = Exp.Workload.to_string (small_workload ()) in
          let truncated =
            String.sub payload 0 (String.length payload / 2)
          in
          let request =
            Json.to_string
              (Protocol.request_to_json
                 (Protocol.Upload { payload = truncated }))
          in
          expect_error_reply "truncated workload payload"
            (raw_roundtrip fd request));
      (* Oversized frame: error reply, then the connection is dropped —
         but only that connection. *)
      with_raw_conn port (fun fd ->
          expect_error_reply "oversized line"
            (raw_roundtrip fd (String.make 8192 'x')));
      (* The server survived all of the above. *)
      with_client port (fun c -> unwrap (Serve.Client.ping c)))

let test_release_errors () =
  with_server (fun _server port ->
      with_client port (fun c ->
          let payload = Exp.Workload.to_string (small_workload ()) in
          let up = unwrap (Serve.Client.upload c ~payload) in
          expect_error "release before any admit"
            (Serve.Client.release c ~app:"A" ());
          (match
             Serve.Client.admit c ~digest:up.Protocol.digest ~app:"A"
               ~min_throughput:0. ()
           with
          | Ok (Protocol.Admitted _) -> ()
          | Ok _ -> Alcotest.fail "A not admitted into an empty session"
          | Error e -> Alcotest.failf "admit: %s" e);
          expect_error "double admit"
            (Serve.Client.admit c ~digest:up.Protocol.digest ~app:"A"
               ~min_throughput:0. ());
          expect_error "release of an unknown app"
            (Serve.Client.release c ~app:"Z" ());
          unwrap (Serve.Client.release c ~app:"A" ())))

(* --- the integration scenario ---------------------------------------- *)

(* Direct estimates for the full use-case, for the bit-for-bit check. *)
let local_rows w estimator =
  let mask = Contention.Usecase.full ~napps:(Exp.Workload.num_apps w) in
  List.map
    (fun (r : Contention.Analysis.estimate) ->
      (r.for_app.graph.Sdf.Graph.name, r.period, Contention.Analysis.throughput r))
    (Contention.Analysis.estimate estimator (Exp.Workload.analysis_apps w mask))

let check_rows_bitwise ~what local (reply : Protocol.estimate_reply) =
  Alcotest.(check int)
    (what ^ ": row count") (List.length local)
    (List.length reply.rows);
  List.iter2
    (fun (name, period, tp) (row : Protocol.estimate_row) ->
      Alcotest.(check string) (what ^ ": app order") name row.Protocol.app;
      if Int64.bits_of_float period <> Int64.bits_of_float row.Protocol.period
      then
        Alcotest.failf "%s: period of %s differs: %h vs %h" what name period
          row.Protocol.period;
      if
        Int64.bits_of_float tp
        <> Int64.bits_of_float row.Protocol.throughput
      then Alcotest.failf "%s: throughput of %s differs" what name)
    local reply.rows

(* One client's session: upload, estimate twice (second must be cached and
   identical), admit with a floor just under the achieved throughput, push a
   second app in until someone is rejected as a victim, release, stats.
   Runs concurrently with the other client on a distinct session and a
   distinct estimator (hence distinct cache keys, so cached=false then
   cached=true is deterministic per client). *)
let client_scenario ~port ~session ~estimator w () =
  with_client port (fun c ->
      unwrap (Serve.Client.ping c);
      let payload = Exp.Workload.to_string w in
      let up = unwrap (Serve.Client.upload c ~payload) in
      let digest = up.Protocol.digest in
      Alcotest.(check string) "digest" (Serve.Store.digest_of w) digest;
      Alcotest.(check int) "procs" w.Exp.Workload.procs up.Protocol.procs;
      let e1 = unwrap (Serve.Client.estimate c ~digest ~estimator ()) in
      if e1.Protocol.cached then
        Alcotest.fail "first estimate claims to be cached";
      let e2 = unwrap (Serve.Client.estimate c ~digest ~estimator ()) in
      if not e2.Protocol.cached then
        Alcotest.fail "second estimate missed the cache";
      check_rows_bitwise ~what:"cached reply" (local_rows w estimator) e2;
      check_rows_bitwise ~what:"first reply" (local_rows w estimator) e1;
      (* Admission: A alone is comfortable; pin its requirement just below
         what it achieves alone, then admitting the others must eventually
         reject a candidate because A would become a victim. *)
      let tp_a =
        match
          Serve.Client.admit c ~session ~digest ~app:"A" ~min_throughput:0. ()
        with
        | Ok (Protocol.Admitted { throughput; _ }) -> throughput
        | Ok _ -> Alcotest.fail "A rejected from an empty session"
        | Error e -> Alcotest.failf "admit A: %s" e
      in
      unwrap (Serve.Client.release c ~session ~app:"A" ());
      (match
         Serve.Client.admit c ~session ~digest ~app:"A"
           ~min_throughput:(tp_a *. 0.999) ()
       with
      | Ok (Protocol.Admitted _) -> ()
      | Ok _ -> Alcotest.fail "A rejected at its own solo throughput"
      | Error e -> Alcotest.failf "re-admit A: %s" e);
      let rec push_until_victim = function
        | [] -> Alcotest.fail "no admission ever named A as victim"
        | app :: rest -> (
            match
              Serve.Client.admit c ~session ~digest ~app ~min_throughput:0. ()
            with
            | Ok (Protocol.Rejected_victim { victim; estimated; required }) ->
                Alcotest.(check string) "victim is A" "A" victim;
                if estimated >= required then
                  Alcotest.fail "victim estimate not below its requirement"
            | Ok (Protocol.Admitted _) -> push_until_victim rest
            | Ok (Protocol.Rejected_candidate _) -> push_until_victim rest
            | Error e -> Alcotest.failf "admit %s: %s" app e)
      in
      push_until_victim [ "B"; "C" ];
      unwrap (Serve.Client.release c ~session ~app:"A" ()))

let test_integration () =
  let w = small_workload () in
  with_server (fun server port ->
      (* Two concurrent clients on separate sessions and estimators. *)
      let doms =
        [
          Domain.spawn
            (client_scenario ~port ~session:"alpha"
               ~estimator:(Contention.Analysis.Order 2) w);
          Domain.spawn
            (client_scenario ~port ~session:"beta"
               ~estimator:(Contention.Analysis.Order 4) w);
        ]
      in
      List.iter Domain.join doms;
      with_client port (fun c ->
          let s = unwrap (Serve.Client.stats c) in
          Alcotest.(check int) "one workload stored" 1 s.Protocol.workloads;
          Alcotest.(check int) "two sessions live" 2 s.Protocol.sessions;
          (* Each client: one miss then one hit on its own cache key. *)
          Alcotest.(check int) "cache entries" 2 s.Protocol.cache_entries;
          Alcotest.(check int) "cache hits" 2 s.Protocol.cache_hits;
          Alcotest.(check int) "cache misses" 2 s.Protocol.cache_misses;
          Fixtures.check_float ~eps:1e-9 "hit rate" 0.5
            (Protocol.cache_hit_rate s);
          if s.Protocol.rejected_victim < 2 then
            Alcotest.failf "expected 2 victim rejections, saw %d"
              s.Protocol.rejected_victim;
          Alcotest.(check int) "released" 4 s.Protocol.released;
          (* Each scenario client issues at least 9 requests; the stats
             snapshot precedes the recording of the stats request itself. *)
          if s.Protocol.requests_total < 18 then
            Alcotest.fail "request counter implausibly low";
          if s.Protocol.latency_samples <> s.Protocol.requests_total then
            Alcotest.fail "every request must be timed";
          Alcotest.(check int) "worker pool size" 2 s.Protocol.workers;
          (* The connection asking for stats is itself being served. *)
          if s.Protocol.active_connections < 1 then
            Alcotest.fail "the stats connection must count as active";
          if Protocol.pool_occupancy s <= 0. then
            Alcotest.fail "pool occupancy must be positive";
          (* The Prometheus exposition over the wire carries the per-command
             counters and latency histograms. *)
          let m = unwrap (Serve.Client.metrics c) in
          let contains needle =
            let hay = m.Protocol.prometheus in
            let nh = String.length needle and nl = String.length hay in
            let rec at i = i + nh <= nl
              && (String.sub hay i nh = needle || at (i + 1)) in
            if not (at 0) then
              Alcotest.failf "metrics exposition lacks %S:\n%s" needle hay
          in
          contains "# TYPE contention_serve_requests_total counter";
          contains "contention_serve_requests_total{cmd=\"estimate\"} 4";
          contains "# TYPE contention_serve_request_seconds histogram";
          contains "contention_serve_request_seconds_bucket{cmd=\"estimate\",le=\"+Inf\"} 4";
          contains "contention_serve_request_seconds_count{cmd=\"estimate\"} 4";
          contains "contention_serve_cache_hits_total 2";
          contains "contention_serve_cache_misses_total 2";
          contains "contention_serve_workers 2";
          (* A client shutdown request flips the flag the serve loop polls. *)
          if Serve.Server.shutdown_requested server then
            Alcotest.fail "shutdown flag set early";
          unwrap (Serve.Client.shutdown c);
          if not (Serve.Server.shutdown_requested server) then
            Alcotest.fail "shutdown flag not set"));
  (* with_server's finally already ran stop; a second stop must be a
     no-op. *)
  ()

let test_graceful_stop_with_idle_client () =
  let w = small_workload () in
  with_server (fun server port ->
      let c = unwrap (Serve.Client.connect ~port ()) in
      let payload = Exp.Workload.to_string w in
      ignore (unwrap (Serve.Client.upload c ~payload) : Protocol.upload_reply);
      (* The client now sits idle on an open connection; stop () must not
         wait for it to hang up. *)
      Serve.Server.stop server;
      Serve.Client.close c)

let suite =
  [
    Alcotest.test_case "store" `Quick test_store;
    Alcotest.test_case "lru" `Quick test_lru;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "estimator names" `Quick test_estimator_names;
    Alcotest.test_case "robustness" `Quick test_robustness;
    Alcotest.test_case "admission errors" `Quick test_release_errors;
    Alcotest.test_case "integration" `Quick test_integration;
    Alcotest.test_case "graceful stop, idle client" `Quick
      test_graceful_stop_with_idle_client;
  ]
