(* The shadow auditor: the Page-Hinkley drift detector on synthetic error
   streams, the head-based sampler, queue-full drops, and the end-to-end
   path — a live server with audit_sample = 1 replaying a served estimate
   through the simulator, with the accuracy section on the stats wire, the
   per-estimator error histogram in the Prometheus exposition, the audit
   journal record joining the originating request by trace id, and the
   replay span carrying the originating trace.  Plus the degenerate join:
   an empty journal joins to nothing without error. *)

module Json = Serve.Json
module Protocol = Serve.Protocol
module Audit = Serve.Audit
module Span = Obs.Span

let unwrap = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- drift detector --------------------------------------------------- *)

let test_drift_steady () =
  let d = Audit.Drift.create ~delta:0.005 ~lambda:0.25 ~min_samples:5 () in
  (* A constant error stream is calibration, not drift. *)
  for _ = 1 to 200 do
    if Audit.Drift.observe d 0.03 then Alcotest.fail "alarm on a steady stream"
  done;
  Alcotest.(check bool) "not flagged" false (Audit.Drift.flagged d);
  Alcotest.(check int) "no alarms" 0 (Audit.Drift.alarms d)

let test_drift_shift_up () =
  let d = Audit.Drift.create ~delta:0. ~lambda:0.5 ~min_samples:5 () in
  for _ = 1 to 50 do
    ignore (Audit.Drift.observe d 0.01 : bool)
  done;
  Alcotest.(check bool) "clean before the shift" false (Audit.Drift.flagged d);
  (* The error level jumps: the cumulative upward deviation must cross
     lambda within a few observations. *)
  let alarmed = ref false in
  for _ = 1 to 10 do
    if Audit.Drift.observe d 0.5 then alarmed := true
  done;
  Alcotest.(check bool) "upward shift alarms" true !alarmed;
  Alcotest.(check bool) "flagged is sticky" true (Audit.Drift.flagged d);
  if Audit.Drift.alarms d < 1 then Alcotest.fail "alarm not counted";
  (* Detection restarted after the alarm; the flag stays up on a now-steady
     stream. *)
  for _ = 1 to 50 do
    ignore (Audit.Drift.observe d 0.5 : bool)
  done;
  Alcotest.(check bool) "still flagged" true (Audit.Drift.flagged d)

let test_drift_shift_down () =
  let d = Audit.Drift.create ~delta:0. ~lambda:0.5 ~min_samples:5 () in
  for _ = 1 to 50 do
    ignore (Audit.Drift.observe d 0.01 : bool)
  done;
  let alarmed = ref false in
  for _ = 1 to 10 do
    if Audit.Drift.observe d (-0.5) then alarmed := true
  done;
  Alcotest.(check bool) "downward shift alarms" true !alarmed

let test_drift_min_samples () =
  (* The same decisive shift stays silent while n < min_samples. *)
  let d = Audit.Drift.create ~delta:0. ~lambda:0.5 ~min_samples:1000 () in
  for _ = 1 to 5 do
    ignore (Audit.Drift.observe d 0. : bool)
  done;
  for _ = 1 to 20 do
    if Audit.Drift.observe d 10. then Alcotest.fail "alarm before min_samples"
  done;
  Alcotest.(check bool) "not flagged" false (Audit.Drift.flagged d)

(* --- head sampler ------------------------------------------------------ *)

let test_sampler () =
  let registry = Obs.Metric.create_registry () in
  let a =
    Audit.create
      ~config:{ Audit.default_config with Audit.sample_every = 4 }
      ~registry ()
  in
  Fun.protect
    ~finally:(fun () -> Audit.stop a)
    (fun () ->
      let picks = List.init 12 (fun _ -> Audit.sampled a) in
      Alcotest.(check (list bool))
        "1-in-4 head sampling"
        [
          true; false; false; false;
          true; false; false; false;
          true; false; false; false;
        ]
        picks)

(* --- end to end -------------------------------------------------------- *)

let contains ~what hay needle =
  let nh = String.length needle and nl = String.length hay in
  let rec at i = i + nh <= nl && (String.sub hay i nh = needle || at (i + 1)) in
  if not (at 0) then Alcotest.failf "%s lacks %S:\n%s" what needle hay

let read_json_lines path =
  In_channel.with_open_text path (fun ic ->
      In_channel.input_lines ic
      |> List.map (fun l -> unwrap (Json.of_string l)))

let str_member name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with Some (Json.Str s) -> Some s | _ -> None)
  | _ -> None

(* Join journal records against spans by trace id: the audit line must hang
   off the same trace as the request that triggered it. *)
let join_by_trace records spans =
  List.filter_map
    (fun r ->
      match str_member "trace" r with
      | None -> None
      | Some hex ->
          let matching =
            List.filter
              (fun (s : Span.t) -> Span.id_to_hex s.Span.trace_id = hex)
              spans
          in
          Some (r, matching))
    records

let test_audit_end_to_end () =
  let w = Exp.Workload.make ~seed:7 ~num_apps:3 ~procs:2 () in
  let journal_path = Filename.temp_file "audit_journal" ".jsonl" in
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      unix_path = None;
      jobs = Some 2;
      audit_sample = 1;
      audit_horizon = 50_000.;
      journal_path = Some journal_path;
      journal_sample = 1;
    }
  in
  Span.reset ();
  Span.set_enabled true;
  let server = Serve.Server.start ~config () in
  let cleanup () =
    Serve.Server.stop server;
    Span.reset ();
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ journal_path; journal_path ^ ".1" ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let port = Option.get (Serve.Server.tcp_port server) in
      let c = unwrap (Serve.Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let up =
            unwrap (Serve.Client.upload c ~payload:(Exp.Workload.to_string w))
          in
          let digest = up.Protocol.digest in
          let ctx = Span.new_trace () in
          let reply =
            Span.with_context ctx (fun () ->
                unwrap
                  (Serve.Client.estimate c ~digest
                     ~estimator:(Contention.Analysis.Order 2) ()))
          in
          if reply.Protocol.rows = [] then Alcotest.fail "empty estimate";
          (match Serve.Server.audit server with
          | None -> Alcotest.fail "auditor absent with audit_sample = 1"
          | Some a -> Audit.drain a);
          (* Accuracy section on the stats wire. *)
          let s = unwrap (Serve.Client.stats c) in
          let au = s.Protocol.audit in
          Alcotest.(check int) "sample rate" 1 au.Protocol.audit_sample;
          Alcotest.(check int) "submitted" 1 au.Protocol.audit_submitted;
          Alcotest.(check int) "completed" 1 au.Protocol.audit_completed;
          Alcotest.(check int) "dropped" 0 au.Protocol.audit_dropped;
          Alcotest.(check int) "failed" 0 au.Protocol.audit_failed;
          Alcotest.(check int) "alarms" 0 au.Protocol.audit_alarms;
          Alcotest.(check (list string)) "drifting" [] au.Protocol.audit_drifting;
          if not (Float.is_finite au.Protocol.audit_mean_err) then
            Alcotest.fail "mean error not finite";
          if au.Protocol.audit_max_abs_err <= 0. then
            Alcotest.fail "max |err| should be positive on this workload";
          (* Per-estimator calibration series in the exposition. *)
          let m = unwrap (Serve.Client.metrics c) in
          let exposition = m.Protocol.prometheus in
          let has = contains ~what:"exposition" exposition in
          has {|contention_serve_audit_total{estimator="second-order"} 1|};
          has {|contention_serve_audit_error_bucket{estimator="second-order",le="+Inf"}|};
          has {|contention_serve_audit_error_sum{estimator="second-order"}|};
          has {|contention_serve_audit_error_count{estimator="second-order"}|};
          has {|contention_serve_audit_drift{estimator="second-order"} 0|};
          has "contention_serve_audit_dropped_total 0";
          has "contention_serve_audit_failed_total 0";
          (* The audit journal record joins the originating request's trace:
             same trace id as the estimate line and as the replay span. *)
          let records = read_json_lines journal_path in
          let audits =
            List.filter (fun r -> str_member "cmd" r = Some "audit") records
          in
          Alcotest.(check int) "one audit journal record" 1 (List.length audits);
          let audit_rec = List.hd audits in
          let hex = Span.id_to_hex ctx.Span.trace_id in
          Alcotest.(check (option string))
            "audit record carries the originating trace" (Some hex)
            (str_member "trace" audit_rec);
          Alcotest.(check (option string))
            "outcome" (Some "ok") (str_member "outcome" audit_rec);
          Alcotest.(check (option string))
            "estimator" (Some "second-order")
            (str_member "estimator" audit_rec);
          Alcotest.(check (option string))
            "workload digest" (Some digest)
            (str_member "workload" audit_rec);
          (match
             List.find_opt
               (fun r -> str_member "cmd" r = Some "estimate")
               records
           with
          | None -> Alcotest.fail "estimate request not journalled"
          | Some est_rec ->
              Alcotest.(check (option string))
                "estimate and audit share the trace" (Some hex)
                (str_member "trace" est_rec));
          (* And the replay span itself hangs off that trace. *)
          let spans = Span.collect () in
          let replay =
            List.filter (fun (s : Span.t) -> s.Span.name = "audit.replay") spans
          in
          Alcotest.(check int) "one replay span" 1 (List.length replay);
          Alcotest.(check int64)
            "replay span carries the originating trace id" ctx.Span.trace_id
            (List.hd replay).Span.trace_id;
          (* The join helper ties them together — and every audit record
             resolves to at least one span. *)
          (match join_by_trace audits spans with
          | [ (_, matching) ] ->
              if matching = [] then Alcotest.fail "audit record joins no spans"
          | _ -> Alcotest.fail "join lost the audit record")))

let test_queue_full_drops () =
  let w = Exp.Workload.make ~seed:7 ~num_apps:2 ~procs:2 () in
  let registry = Obs.Metric.create_registry () in
  let a =
    Audit.create
      ~config:
        {
          Audit.default_config with
          Audit.sample_every = 1;
          queue_capacity = 1;
          horizon = 2_000.;
        }
      ~registry ()
  in
  Fun.protect
    ~finally:(fun () -> Audit.stop a)
    (fun () ->
      let mask = Contention.Usecase.full ~napps:2 in
      let task =
        {
          Audit.digest = "d";
          workload = w;
          mask;
          estimator = "second-order";
          rows =
            List.map
              (fun name ->
                {
                  Protocol.app = name;
                  period = 100.;
                  isolation_period = 100.;
                  throughput = 0.01;
                })
              (Array.to_list (Exp.Workload.names w));
          ctx = None;
        }
      in
      (* Saturate: with capacity 1 some of a burst must be dropped, and
         every submission must be accounted submitted or dropped. *)
      let accepted = ref 0 in
      for _ = 1 to 50 do
        if Audit.submit a task then incr accepted
      done;
      Audit.drain a;
      let s = Audit.stats a in
      Alcotest.(check int) "accepted = submitted" !accepted
        s.Protocol.audit_submitted;
      Alcotest.(check int) "the rest dropped" (50 - !accepted)
        s.Protocol.audit_dropped;
      if s.Protocol.audit_dropped = 0 then
        Alcotest.fail "a 50-deep burst into a 1-deep queue must drop";
      Alcotest.(check int) "drained everything accepted"
        s.Protocol.audit_submitted s.Protocol.audit_completed;
      (* Submissions after stop are refused, not queued. *)
      Audit.stop a;
      if Audit.submit a task then Alcotest.fail "submit accepted after stop")

(* --- stats wire compatibility ------------------------------------------ *)

let test_stats_wire_compat () =
  (* A stats reply from a pre-audit server (no "audit" member) still
     parses, with auditing reported off. *)
  let config =
    { Serve.Server.default_config with port = Some 0; jobs = Some 1 }
  in
  let server = Serve.Server.start ~config () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () ->
      let reply = Serve.Server.handle_line server {|{"cmd": "stats"}|} in
      let payload =
        unwrap (Protocol.unwrap_reply (unwrap (Json.of_string reply)))
      in
      let stripped =
        match payload with
        | Json.Obj fields ->
            Json.Obj (List.filter (fun (k, _) -> k <> "audit") fields)
        | json -> json
      in
      let old = unwrap (Protocol.stats_reply_of_json stripped) in
      Alcotest.(check int) "older server: auditing off" 0
        old.Protocol.audit.Protocol.audit_sample;
      (* And the auditing-off server reports sample 0 itself. *)
      let s = unwrap (Protocol.stats_reply_of_json payload) in
      Alcotest.(check int) "audit off by default" 0
        s.Protocol.audit.Protocol.audit_sample)

(* --- empty journal join ------------------------------------------------ *)

let test_empty_journal_join () =
  let path = Filename.temp_file "empty_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let j = Serve.Journal.create ~sample_every:1 path in
      Serve.Journal.close j;
      Alcotest.(check int) "nothing written" 0 (Serve.Journal.written j);
      let records = read_json_lines path in
      Alcotest.(check int) "no records" 0 (List.length records);
      (* Joining an empty journal against live spans is empty, not an
         error — the trace-merge side of the join must not dangle. *)
      let spans =
        [
          {
            Span.name = "serve.estimate";
            args = [];
            ts_ns = 0L;
            dur_ns = 1L;
            domain = 0;
            trace_id = 42L;
            span_id = 1L;
            parent_id = 0L;
          };
        ]
      in
      Alcotest.(check int) "empty join" 0
        (List.length (join_by_trace records spans)))

let suite =
  [
    Alcotest.test_case "drift: steady stream" `Quick test_drift_steady;
    Alcotest.test_case "drift: upward shift" `Quick test_drift_shift_up;
    Alcotest.test_case "drift: downward shift" `Quick test_drift_shift_down;
    Alcotest.test_case "drift: min samples" `Quick test_drift_min_samples;
    Alcotest.test_case "head sampler" `Quick test_sampler;
    Alcotest.test_case "end to end" `Slow test_audit_end_to_end;
    Alcotest.test_case "queue full drops" `Slow test_queue_full_drops;
    Alcotest.test_case "stats wire compatibility" `Quick test_stats_wire_compat;
    Alcotest.test_case "empty journal join" `Quick test_empty_journal_join;
  ]
