(* Unit tests for the differential-validation subsystem (lib/check): spec
   serialization, deterministic materialization, shrinking, the oracle's
   ability to catch an injected estimator bug, the corpus format, the fuzz
   driver, and the wire fuzzer.  The corpus replay at the end is the
   regression guard: every shrunk counterexample ever stored must stay
   clean on the current code. *)

module Case = Check.Case
module Rng = Sdfgen.Rng

let sample_specs : Case.spec list =
  [
    {
      seed = 42;
      procs = 2;
      usecase = 3;
      apps = [| { actors = 3; exec_scale = 1. }; { actors = 2; exec_scale = 0.5 } |];
    };
    { seed = 0; procs = 1; usecase = 1; apps = [| { actors = 2; exec_scale = 0.015625 } |] };
    {
      seed = 123456789;
      procs = 3;
      usecase = 5;
      apps =
        [|
          { actors = 5; exec_scale = 2. };
          { actors = 4; exec_scale = 1. };
          { actors = 2; exec_scale = 0.25 };
        |];
    };
  ]

let spec_eq (a : Case.spec) (b : Case.spec) =
  a.seed = b.seed && a.procs = b.procs && a.usecase = b.usecase
  && Array.length a.apps = Array.length b.apps
  && Array.for_all2
       (fun (x : Case.app_spec) (y : Case.app_spec) ->
         x.actors = y.actors && x.exec_scale = y.exec_scale)
       a.apps b.apps

let test_spec_line_roundtrip () =
  List.iter
    (fun spec ->
      let line = Case.spec_to_line spec in
      match Case.spec_of_line line with
      | Error e -> Alcotest.failf "parse %S: %s" line e
      | Ok spec' ->
          if not (spec_eq spec spec') then
            Alcotest.failf "round-trip changed %S -> %S" line
              (Case.spec_to_line spec'))
    sample_specs

let test_spec_line_total () =
  List.iter
    (fun line ->
      match Case.spec_of_line line with
      | Error _ -> ()
      | Ok spec ->
          Alcotest.failf "garbage %S parsed as %S" line (Case.spec_to_line spec))
    [
      "";
      "spec";
      "spec seed=x procs=1 usecase=1 apps=2:1";
      "spec seed=1 procs=1 usecase=1";
      "spec seed=1 procs=1 usecase=1 apps=";
      "spec seed=1 procs=1 usecase=1 apps=2:1,";
      "spec seed=1 procs=1 usecase=1 apps=banana";
      "digraph \"A\" {";
    ]

let test_random_specs_materialize () =
  for seed = 0 to 99 do
    let spec = Case.random seed in
    let napps = Array.length spec.apps in
    if napps < 1 || napps > 3 then Alcotest.failf "seed %d: %d apps" seed napps;
    if spec.procs < 1 || spec.procs > 3 then
      Alcotest.failf "seed %d: %d procs" seed spec.procs;
    if spec.usecase < 1 || spec.usecase >= 1 lsl napps then
      Alcotest.failf "seed %d: usecase %d out of range" seed spec.usecase;
    Array.iter
      (fun (a : Case.app_spec) ->
        if a.actors < 2 || a.actors > 5 then
          Alcotest.failf "seed %d: %d actors" seed a.actors)
      spec.apps;
    match Case.materialize spec with
    | Error e -> Alcotest.failf "seed %d does not materialize: %s" seed e
    | Ok t ->
        if Case.active_actors t < 2 then
          Alcotest.failf "seed %d: no active actors" seed
  done

let test_materialize_deterministic () =
  List.iter
    (fun seed ->
      let spec = Case.random seed in
      match (Case.materialize spec, Case.materialize spec) with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d describe" seed)
            (Case.describe a) (Case.describe b)
      | _ -> Alcotest.failf "seed %d failed to materialize" seed)
    [ 0; 7; 31; 99 ]

let test_materialize_rejects_invalid () =
  let base = Case.random 5 in
  let invalid =
    [
      { base with Case.usecase = 0 };
      { base with Case.usecase = 1 lsl Array.length base.apps };
      { base with Case.procs = 0 };
      { base with Case.apps = [||] };
      { base with Case.apps = [| { Case.actors = 1; exec_scale = 1. } |] };
      { base with Case.apps = [| { Case.actors = 3; exec_scale = 0. } |] };
    ]
  in
  List.iter
    (fun spec ->
      match Case.materialize spec with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "invalid spec accepted: %s" (Case.spec_to_line spec))
    invalid

let test_shrink_synthetic () =
  (* A predicate that only needs two applications: the minimizer must strip
     everything else — third app gone, actor counts at the floor of 2,
     execution scales halved down to 1/64. *)
  let start : Case.spec =
    {
      seed = 11;
      procs = 3;
      usecase = 7;
      apps =
        [|
          { actors = 5; exec_scale = 4. };
          { actors = 4; exec_scale = 1. };
          { actors = 3; exec_scale = 1. };
        |];
    }
  in
  let still_fails (s : Case.spec) = Array.length s.apps >= 2 in
  let shrunk = Check.Shrink.minimize ~still_fails start in
  Alcotest.(check bool) "still fails" true (still_fails shrunk);
  Alcotest.(check int) "two apps left" 2 (Array.length shrunk.apps);
  Array.iter
    (fun (a : Case.app_spec) ->
      Alcotest.(check int) "actor floor" 2 a.actors;
      Fixtures.check_float "scale floor" (1. /. 64.) a.exec_scale)
    shrunk.apps;
  (* Deterministic: same input, same minimum. *)
  let shrunk' = Check.Shrink.minimize ~still_fails start in
  Alcotest.(check bool) "deterministic" true (spec_eq shrunk shrunk')

let test_shrink_respects_budget () =
  let calls = ref 0 in
  let still_fails _ =
    incr calls;
    true
  in
  ignore (Check.Shrink.minimize ~max_attempts:5 ~still_fails (Case.random 3));
  Alcotest.(check bool) "at most 5 calls" true (!calls <= 5)

let loads =
  [
    Contention.Prob.make ~p:0.3 ~mu:5. ~tau:10.;
    Contention.Prob.make ~p:0.5 ~mu:7. ~tau:14.;
    Contention.Prob.make ~p:0.2 ~mu:3. ~tau:9.;
  ]

let test_oracle_kernel_clean () =
  match Check.Oracle.check_kernel (Rng.create 1) loads with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "clean loads flagged: %s: %s" v.Check.Oracle.property
        v.Check.Oracle.detail

(* Eq. 4 with the (-1)^(j+1) factor inverted — the classic transcription
   bug.  The oracle must catch it through the brute-force cross-check
   without any library code being patched. *)
let buggy_exact loads =
  match loads with
  | [] -> 0.
  | loads ->
      let ps = Array.of_list (List.map (fun (l : Contention.Prob.t) -> l.p) loads) in
      let es = Contention.Sympoly.all ps in
      let n = Array.length ps in
      List.fold_left
        (fun acc (l : Contention.Prob.t) ->
          let others = Contention.Sympoly.without es l.p in
          let series = ref 1. in
          for j = 1 to n - 1 do
            let coeff = (if j mod 2 = 1 then -1. else 1.) /. float_of_int (j + 1) in
            series := !series +. (coeff *. others.(j))
          done;
          acc +. (Contention.Prob.waiting_product l *. !series))
        0. loads

let test_oracle_catches_injected_bug () =
  let violations =
    Check.Oracle.check_kernel ~exact:buggy_exact (Rng.create 1) loads
  in
  Alcotest.(check bool) "bug detected" true (violations <> []);
  let properties =
    List.sort_uniq compare
      (List.map (fun v -> v.Check.Oracle.property) violations)
  in
  Alcotest.(check bool)
    (Printf.sprintf "brute force disagrees (got: %s)"
       (String.concat ", " properties))
    true
    (List.mem "exact-vs-brute-force" properties)

let test_corpus_roundtrip () =
  List.iter
    (fun spec ->
      let entry =
        {
          Check.Corpus.property = "order-sandwich";
          detail = "order 2 < order 4 at actor 1: 3.5 < 3.6";
          spec;
        }
      in
      let text = Check.Corpus.to_string entry in
      match Check.Corpus.of_string text with
      | Error e -> Alcotest.failf "corpus parse: %s\n%s" e text
      | Ok entry' ->
          Alcotest.(check string) "property" entry.property entry'.property;
          Alcotest.(check string) "detail" entry.detail entry'.detail;
          Alcotest.(check bool) "spec" true (spec_eq entry.spec entry'.spec);
          let name = Check.Corpus.filename entry in
          Alcotest.(check bool) "filename prefix" true
            (String.length name > 14
            && String.sub name 0 14 = "order-sandwich");
          Alcotest.(check string) "filename suffix" ".case"
            (String.sub name (String.length name - 5) 5))
    sample_specs

let strip_elapsed (r : Check.Fuzz.result) = { r with Check.Fuzz.elapsed_s = 0. }

let test_fuzz_run_small () =
  let r = Check.Fuzz.run ~jobs:2 ~seeds:25 () in
  Alcotest.(check bool) "passed" true (Check.Fuzz.passed r);
  Alcotest.(check int) "all ran" 25 r.ran;
  Alcotest.(check int) "none skipped" 0 r.skipped;
  Alcotest.(check (list string)) "accuracy rows"
    (List.map fst Check.Oracle.estimators)
    (List.map (fun (a : Check.Fuzz.accuracy) -> a.estimator) r.accuracy);
  List.iter
    (fun (a : Check.Fuzz.accuracy) ->
      if a.samples <= 0 then Alcotest.failf "%s: no samples" a.estimator;
      if not (Float.is_finite a.mean_err && a.mean_err >= 0.) then
        Alcotest.failf "%s: bad mean %g" a.estimator a.mean_err;
      if a.max_err < a.mean_err then
        Alcotest.failf "%s: max %g < mean %g" a.estimator a.max_err a.mean_err)
    r.accuracy;
  (* Determinism across job counts: the pool merge is seed-ordered. *)
  let r' = Check.Fuzz.run ~jobs:1 ~seeds:25 () in
  Alcotest.(check bool) "jobs-independent" true
    (strip_elapsed r = strip_elapsed r');
  let rendered = Check.Report.render r in
  Alcotest.(check bool) "report mentions no violations" true
    (Fixtures.contains ~affix:"violations: none" rendered)

let test_fuzz_budget_skips () =
  let r = Check.Fuzz.run ~jobs:1 ~budget_s:0. ~seeds:10 () in
  Alcotest.(check int) "accounted" 10 (r.ran + r.skipped);
  Alcotest.(check bool) "budget skipped seeds" true (r.skipped >= 9);
  Alcotest.(check bool) "skipping is not failing" true (Check.Fuzz.passed r)

let test_corpus_replay () =
  (* The committed counterexamples document bugs that are fixed: each must
     parse and re-check clean.  The corpus directory is a dune dep, so this
     runs against the checked-in files on every dune runtest ([dune runtest]
     executes in the sandboxed test directory; [dune exec] from the root
     needs the source path). *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let outcomes, errors = Check.Fuzz.replay ~dir () in
  (match errors with
  | [] -> ()
  | (path, e) :: _ -> Alcotest.failf "unreadable corpus file %s: %s" path e);
  Alcotest.(check bool) "corpus is not empty" true (outcomes <> []);
  List.iter
    (fun (path, (o : Check.Oracle.outcome)) ->
      match o.violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "corpus case %s regressed: %s: %s" path
            v.Check.Oracle.property v.Check.Oracle.detail)
    outcomes

let test_wirefuzz_line_deterministic () =
  let lines seed =
    let rng = Rng.create seed in
    List.init 30 (fun _ -> Check.Wirefuzz.fuzz_line rng)
  in
  Alcotest.(check (list string)) "same seed, same stream" (lines 4) (lines 4);
  Alcotest.(check bool) "different seed, different stream" true
    (lines 4 <> lines 5)

let test_wirefuzz_run () =
  let r = Check.Wirefuzz.run ~seeds:60 () in
  (match r.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "wire violation: %s: %s" v.Check.Oracle.property
        v.Check.Oracle.detail);
  Alcotest.(check bool) "made requests" true (r.requests >= 60)

let suite =
  [
    Alcotest.test_case "spec line round-trip" `Quick test_spec_line_roundtrip;
    Alcotest.test_case "spec parser is total" `Quick test_spec_line_total;
    Alcotest.test_case "random specs are valid and materialize" `Quick
      test_random_specs_materialize;
    Alcotest.test_case "materialization is deterministic" `Quick
      test_materialize_deterministic;
    Alcotest.test_case "invalid specs rejected" `Quick
      test_materialize_rejects_invalid;
    Alcotest.test_case "shrink reaches the floor" `Quick test_shrink_synthetic;
    Alcotest.test_case "shrink attempt budget" `Quick
      test_shrink_respects_budget;
    Alcotest.test_case "oracle kernel clean on sane loads" `Quick
      test_oracle_kernel_clean;
    Alcotest.test_case "oracle catches injected sign bug" `Quick
      test_oracle_catches_injected_bug;
    Alcotest.test_case "corpus entry round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "fuzz campaign, small and deterministic" `Slow
      test_fuzz_run_small;
    Alcotest.test_case "zero budget skips, not fails" `Quick
      test_fuzz_budget_skips;
    Alcotest.test_case "corpus replay is clean" `Slow test_corpus_replay;
    Alcotest.test_case "wire fuzz lines deterministic" `Quick
      test_wirefuzz_line_deterministic;
    Alcotest.test_case "wire fuzz campaign" `Slow test_wirefuzz_run;
  ]
