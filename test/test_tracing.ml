(* Distributed tracing end to end: trace-id wire encoding, ambient
   context linkage, the lenient trace envelope, deterministic
   cross-process merge (any input order -> byte-identical JSON), the
   trace-file round-trip through Cluster.Trace, live propagation across
   two peered in-process servers (client span, serve span and the hot
   cache-put replication span all share one trace id), the sampled
   request journal with rotation, SLO burn-rate windows under an
   injected clock, and the shard-labelled Prometheus merge. *)

module Json = Serve.Json
module Protocol = Serve.Protocol
module Span = Obs.Span
module Trace = Obs.Trace
module Endpoint = Cluster.Endpoint
module Router = Cluster.Router

let unwrap = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let poll ~what ?(attempts = 250) pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go (n - 1)
    end
  in
  go attempts

(* Span buffers are process-global; keep them clean around each test so
   suites do not leak spans into each other. *)
let with_recording f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect ~finally:Span.reset f

(* --- id wire encoding ------------------------------------------------ *)

let test_id_hex () =
  let roundtrip id =
    match Span.id_of_hex (Span.id_to_hex id) with
    | Some back when back = id -> ()
    | Some back -> Alcotest.failf "%Ld round-tripped to %Ld" id back
    | None -> Alcotest.failf "%Ld: hex form did not parse" id
  in
  List.iter roundtrip
    [ 1L; 0xdeadbeefL; Int64.max_int; Int64.min_int; -1L (* ffffffffffffffff *) ];
  Alcotest.(check string)
    "sixteen lowercase digits" "00000000deadbeef"
    (Span.id_to_hex 0xdeadbeefL);
  List.iter
    (fun bad ->
      if Span.id_of_hex bad <> None then
        Alcotest.failf "%S should not parse as an id" bad)
    [ ""; "abc"; "00000000deadbee"; "00000000deadbeef0"; "00000000deadbeeg";
      "0x0000000000000001"; " 000000000000001" ];
  (* Fresh trace ids are nonzero and distinct. *)
  let a = Span.new_trace () and b = Span.new_trace () in
  if a.Span.trace_id = 0L then Alcotest.fail "zero trace id";
  if a.Span.trace_id = b.Span.trace_id then
    Alcotest.fail "two fresh traces shared an id"

(* --- ambient context links spans into a tree ------------------------- *)

let test_context_linkage () =
  with_recording (fun () ->
      let ctx = Span.new_trace () in
      Span.with_context ctx (fun () ->
          Span.with_ ~name:"outer" (fun () ->
              Span.with_ ~name:"inner" (fun () -> ())));
      (* Outside with_context the ambient context must be gone. *)
      (match Span.current_context () with
      | None -> ()
      | Some _ -> Alcotest.fail "context leaked out of with_context");
      Span.with_ ~name:"orphan" (fun () -> ());
      let spans = Span.drain () in
      let find name =
        match List.find_opt (fun (s : Span.t) -> s.name = name) spans with
        | Some s -> s
        | None -> Alcotest.failf "span %s was not recorded" name
      in
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check int64) "outer trace" ctx.Span.trace_id outer.trace_id;
      Alcotest.(check int64) "inner trace" ctx.Span.trace_id inner.trace_id;
      if outer.span_id = 0L then Alcotest.fail "outer got no span id";
      Alcotest.(check int64) "outer parents onto the context"
        ctx.Span.parent_span outer.parent_id;
      Alcotest.(check int64) "inner parents onto outer" outer.span_id
        inner.parent_id;
      if inner.span_id = outer.span_id then
        Alcotest.fail "inner and outer shared a span id";
      (* No ambient context: ids stay zero, the pre-tracing rendering. *)
      let orphan = find "orphan" in
      Alcotest.(check int64) "orphan trace" 0L orphan.trace_id;
      Alcotest.(check int64) "orphan span" 0L orphan.span_id)

(* --- trace envelope: stamped on requests, lenient on the way in ------ *)

let test_envelope () =
  let ctx = { Span.trace_id = 0x1234L; parent_span = 0x77L; sampled = false } in
  let json = Protocol.request_to_json ~trace:ctx Protocol.Ping in
  (match Protocol.trace_of_request json with
  | Some back ->
      Alcotest.(check int64) "trace id" ctx.Span.trace_id back.Span.trace_id;
      Alcotest.(check int64) "parent" ctx.Span.parent_span back.Span.parent_span;
      Alcotest.(check bool) "sampled" false back.Span.sampled
  | None -> Alcotest.fail "round-trip lost the trace envelope");
  (* The envelope must not disturb request parsing. *)
  (match Protocol.request_of_json json with
  | Ok Protocol.Ping -> ()
  | Ok _ -> Alcotest.fail "envelope changed the parsed request"
  | Error msg -> Alcotest.failf "request with envelope rejected: %s" msg);
  let parse s = Protocol.trace_of_request (unwrap (Json.of_string s)) in
  (* Unknown fields inside the envelope are ignored (newer clients). *)
  (match
     parse
       {|{"cmd": "ping", "trace": {"id": "00000000000000ff", "baggage": 1}}|}
   with
  | Some c ->
      Alcotest.(check int64) "id survives unknown fields" 0xffL c.Span.trace_id;
      Alcotest.(check bool) "sampled defaults true" true c.Span.sampled
  | None -> Alcotest.fail "unknown envelope field rejected the trace");
  (* Malformed envelopes degrade to "no context", never to an error. *)
  List.iter
    (fun s ->
      match parse s with
      | None -> ()
      | Some _ -> Alcotest.failf "malformed envelope parsed: %s" s)
    [
      {|{"cmd": "ping"}|};
      {|{"cmd": "ping", "trace": null}|};
      {|{"cmd": "ping", "trace": "00000000000000ff"}|};
      {|{"cmd": "ping", "trace": {}}|};
      {|{"cmd": "ping", "trace": {"id": 42}}|};
      {|{"cmd": "ping", "trace": {"id": "nope"}}|};
      {|{"cmd": "ping", "trace": {"id": "0000000000000000"}}|};
    ]

(* --- cross-process merge: deterministic, with flow links ------------- *)

let fake_span ?(args = []) ~name ~ts ~trace ~span_id ~parent () =
  {
    Span.name;
    args;
    ts_ns = ts;
    dur_ns = 1_000L;
    domain = 0;
    trace_id = trace;
    span_id;
    parent_id = parent;
  }

let fake_processes () =
  let client =
    {
      Trace.p_name = "loadgen";
      p_anchor = Some { Trace.wall_ns = 1_000_000_000L; mono_ns = 100L };
      p_spans =
        [ fake_span ~name:"client.estimate" ~ts:200L ~trace:0xabcL ~span_id:1L
            ~parent:0L () ];
    }
  and shard =
    {
      Trace.p_name = "127.0.0.1:4651";
      p_anchor = Some { Trace.wall_ns = 1_000_000_500L; mono_ns = 700L };
      p_spans =
        [ fake_span ~name:"serve.estimate" ~ts:900L ~trace:0xabcL ~span_id:2L
            ~parent:1L () ];
    }
  in
  (client, shard)

let test_merge_determinism () =
  let client, shard = fake_processes () in
  let m1 = Trace.merged_chrome_json [ client; shard ]
  and m2 = Trace.merged_chrome_json [ shard; client ] in
  Alcotest.(check string) "order-independent merge" m1 m2;
  let events =
    match unwrap (Json.of_string m1) with
    | Json.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array")
    | _ -> Alcotest.fail "merged trace is not an object"
  in
  let str json key =
    match json with
    | Json.Obj fields -> (
        match List.assoc_opt key fields with
        | Some (Json.Str s) -> Some s
        | _ -> None)
    | _ -> None
  in
  let phase ph = List.filter (fun e -> str e "ph" = Some ph) events in
  (* Both processes present, sorted by name: shard endpoint before loadgen. *)
  let names =
    List.filter_map
      (fun e -> if str e "name" = Some "process_name" then
          (match e with
          | Json.Obj fs -> (
              match List.assoc_opt "args" fs with
              | Some a -> str a "name"
              | None -> None)
          | _ -> None)
        else None)
      (phase "M")
  in
  Alcotest.(check (list string))
    "processes sorted by name" [ "127.0.0.1:4651"; "loadgen" ] names;
  (* The cross-process parent link became one flow start + one finish. *)
  Alcotest.(check int) "flow starts" 1 (List.length (phase "s"));
  Alcotest.(check int) "flow finishes" 1 (List.length (phase "f"));
  (* Flow ids key on the child span id. *)
  (match phase "s" with
  | [ s ] ->
      Alcotest.(check (option string))
        "flow id" (Some "0x0000000000000002") (str s "id")
  | _ -> ());
  (* Same-process parent links must not produce flows: merging one process
     alone yields none. *)
  let solo = Trace.merged_chrome_json [ shard ] in
  if
    List.exists
      (fun e -> str e "ph" = Some "s")
      (match unwrap (Json.of_string solo) with
      | Json.Obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Json.Arr evs) -> evs
          | _ -> [])
      | _ -> [])
  then Alcotest.fail "single-process merge produced a flow event"

(* A trace file with zero spans (a shard that served nothing while traced)
   must still load and merge into a valid, empty timeline — not an
   error. *)
let test_empty_trace_merge () =
  let path = Filename.temp_file "trace_empty" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.write_file ~process_name:"idle-shard" ~path [];
      let proc = unwrap (Cluster.Trace.load path) in
      Alcotest.(check string) "process name" "idle-shard" proc.Trace.p_name;
      Alcotest.(check int) "no spans" 0 (List.length proc.Trace.p_spans);
      let merged = Trace.merged_chrome_json [ proc ] in
      match Json.of_string merged with
      | Error msg -> Alcotest.failf "merged timeline is not JSON: %s" msg
      | Ok (Json.Obj kvs) -> (
          match List.assoc_opt "traceEvents" kvs with
          | Some (Json.Arr (_ : Json.t list)) -> ()
          | _ -> Alcotest.fail "merged timeline lacks a traceEvents array")
      | Ok _ -> Alcotest.fail "merged timeline is not an object")

(* --- trace file round-trip through Cluster.Trace --------------------- *)

let test_file_roundtrip () =
  let spans =
    with_recording (fun () ->
        let ctx = Span.new_trace () in
        Span.with_context ctx (fun () ->
            Span.with_ ~name:"sweep.simulate"
              ~args:(fun () -> [ ("digest", "cafe") ])
              (fun () -> ()));
        Span.drain ())
  in
  let path = Filename.temp_file "trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.write_file ~process_name:"shard-x" ~path spans;
      let proc = unwrap (Cluster.Trace.load path) in
      Alcotest.(check string) "process name" "shard-x" proc.Trace.p_name;
      if proc.Trace.p_anchor = None then
        Alcotest.fail "clock anchor was not recovered";
      Alcotest.(check int)
        "span count" (List.length spans)
        (List.length proc.Trace.p_spans);
      let orig = List.hd spans and back = List.hd proc.Trace.p_spans in
      Alcotest.(check string) "name" orig.Span.name back.Span.name;
      Alcotest.(check int64) "trace id" orig.Span.trace_id back.Span.trace_id;
      Alcotest.(check int64) "span id" orig.Span.span_id back.Span.span_id;
      Alcotest.(check int64) "parent id" orig.Span.parent_id back.Span.parent_id;
      (* Trace/span/parent ids ride in args on the wire but come back as
         ids, not as leftover args. *)
      (match List.assoc_opt "trace" back.Span.args with
      | None -> ()
      | Some _ -> Alcotest.fail "id args leaked into plain args");
      Alcotest.(check (option string))
        "plain args survive" (Some "cafe")
        (List.assoc_opt "digest" back.Span.args);
      (* Chrome timestamps are microseconds, so the round-trip may quantise
         to 1us; the wall-clock position must hold to that tolerance. *)
      let dt = Int64.abs (Int64.sub back.Span.dur_ns orig.Span.dur_ns) in
      if dt > 1_000L then
        Alcotest.failf "duration drifted by %Ldns in the round-trip" dt)

(* --- live propagation across two peered servers ---------------------- *)

let start_server ?on_hot ?(hot_threshold = 0) () =
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      jobs = Some 2;
      cache_capacity = 16;
      hot_threshold;
    }
  in
  Serve.Server.start ?on_hot ~config ()

let tcp_endpoint server =
  Endpoint.Tcp
    { host = "127.0.0.1"; port = Option.get (Serve.Server.tcp_port server) }

let test_cluster_propagation () =
  with_recording (fun () ->
      let wiring = ref None in
      let on_hot_for self entry =
        match !wiring with
        | Some router -> Router.forward_hot router ~self:(Some self) entry
        | None -> ()
      in
      let self_a = ref None and self_b = ref None in
      let server_a =
        start_server ~hot_threshold:2
          ~on_hot:(fun e -> Option.iter (fun s -> on_hot_for s e) !self_a)
          ()
      in
      let server_b =
        start_server ~hot_threshold:2
          ~on_hot:(fun e -> Option.iter (fun s -> on_hot_for s e) !self_b)
          ()
      in
      let ep_a = tcp_endpoint server_a and ep_b = tcp_endpoint server_b in
      self_a := Some ep_a;
      self_b := Some ep_b;
      let router = Router.create ~pool_size:1 ~timeout:5. [ ep_a; ep_b ] in
      wiring := Some router;
      Fun.protect
        ~finally:(fun () ->
          Router.close router;
          Serve.Server.stop server_a;
          Serve.Server.stop server_b)
        (fun () ->
          let w = Exp.Workload.make ~seed:7 ~num_apps:3 ~procs:2 () in
          let up =
            unwrap (Router.upload router ~payload:(Exp.Workload.to_string w))
          in
          let digest = up.Protocol.digest in
          let estimator = Contention.Analysis.Order 2 in
          let ctx = Span.new_trace () in
          Span.with_context ctx (fun () ->
              Span.with_ ~name:"client.estimate" (fun () ->
                  for _ = 1 to 2 do
                    (* Second hit crosses hot_threshold = 2: the owning
                       shard replicates the entry to its peer under this
                       same trace context. *)
                    match
                      Router.estimate_routed router ~digest ~estimator ()
                    with
                    | Router.Served _, shard ->
                        if shard = "" then Alcotest.fail "no answering shard"
                    | Router.Shed _, _ -> Alcotest.fail "unexpected shed"
                    | Router.Failed msg, _ -> Alcotest.failf "failed: %s" msg
                  done));
          let spans_named name () =
            List.filter
              (fun (s : Span.t) -> s.name = name)
              (Span.collect ())
          in
          (* The replication write happens on a detached thread; wait for
             its span (and the peer's serve span) to land. *)
          poll ~what:"cache-put replication spans" (fun () ->
              spans_named "router.cache_put" () <> []
              && spans_named "serve.cache-put" () <> []);
          let all = Span.collect () in
          let on_trace name =
            match
              List.filter
                (fun (s : Span.t) ->
                  s.name = name && s.trace_id = ctx.Span.trace_id)
                all
            with
            | [] -> Alcotest.failf "no %s span on the request trace" name
            | s :: _ -> s
          in
          let client = on_trace "client.estimate" in
          let route = on_trace "router.estimate" in
          let serve = on_trace "serve.estimate" in
          let forward = on_trace "router.cache_put" in
          let replica = on_trace "serve.cache-put" in
          (* One tree: router under client, serve under router (across the
             wire), and the replication chain under the traced request. *)
          Alcotest.(check int64)
            "router parents onto client span" client.Span.span_id
            route.Span.parent_id;
          Alcotest.(check int64)
            "serve parents onto router span" route.Span.span_id
            serve.Span.parent_id;
          Alcotest.(check int64)
            "replica serve parents onto the forward span" forward.Span.span_id
            replica.Span.parent_id;
          (* The forward span annotates digest and peer. *)
          Alcotest.(check (option string))
            "forward digest arg" (Some digest)
            (List.assoc_opt "digest" forward.Span.args)))

(* --- request journal -------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_journal () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let rotated = path ^ ".1" in
  let cleanup p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      cleanup path;
      cleanup rotated)
    (fun () ->
      let j = Serve.Journal.create ~sample_every:4 ~max_bytes:0 path in
      (* Context-carrying requests follow the head-based bit exactly. *)
      let yes = { Span.trace_id = 1L; parent_span = 0L; sampled = true } in
      let no = { yes with Span.sampled = false } in
      Alcotest.(check bool) "sampled ctx" true
        (Serve.Journal.sampled j ~ctx:(Some yes));
      Alcotest.(check bool) "unsampled ctx" false
        (Serve.Journal.sampled j ~ctx:(Some no));
      (* Context-free requests fall back to 1-in-4. *)
      let fallback =
        List.init 8 (fun _ -> Serve.Journal.sampled j ~ctx:None)
      in
      Alcotest.(check (list bool))
        "fallback cadence"
        [ true; false; false; false; true; false; false; false ]
        fallback;
      Serve.Journal.record j
        (Json.Obj [ ("cmd", Json.Str "estimate"); ("ok", Json.Bool true) ]);
      Serve.Journal.close j;
      (match read_lines path with
      | [ line ] -> (
          match unwrap (Json.of_string line) with
          | Json.Obj fields ->
              Alcotest.(check bool)
                "record round-trips" true
                (List.assoc_opt "cmd" fields = Some (Json.Str "estimate"))
          | _ -> Alcotest.fail "journal line is not an object")
      | lines -> Alcotest.failf "expected 1 line, found %d" (List.length lines));
      cleanup path;
      (* Rotation: a budget below one line's size forces path -> path.1
         after every write, so .1 always holds exactly the previous line. *)
      let j = Serve.Journal.create ~sample_every:1 ~max_bytes:10 path in
      let entry tag = Json.Obj [ ("tag", Json.Str tag) ] in
      Serve.Journal.record j (entry "first");
      Serve.Journal.record j (entry "second");
      Alcotest.(check int) "written spans rotation" 2 (Serve.Journal.written j);
      Serve.Journal.close j;
      Alcotest.(check (list string))
        "previous generation kept"
        [ {|{"tag":"second"}|} ]
        (read_lines rotated))

(* --- SLO burn-rate windows ------------------------------------------- *)

let test_slo () =
  let now = ref 1000 in
  let slo =
    Serve.Slo.create ~now_s:(fun () -> !now) ~objective_ms:50. ~target:0.9 ()
  in
  let burn () = Serve.Slo.snapshot slo in
  Alcotest.(check (float 1e-9)) "empty 1m" 0. (burn ()).Serve.Slo.burn_1m;
  (* 4 requests, 2 over the objective: half the traffic is bad, a 10%
     budget -> burn 5x on both windows. *)
  Serve.Slo.record slo ~latency_s:0.010;
  Serve.Slo.record slo ~latency_s:0.049;
  Serve.Slo.record slo ~latency_s:0.051;
  Serve.Slo.record slo ~latency_s:2.0;
  let s = burn () in
  Alcotest.(check (float 1e-6)) "1m burn" 5. s.Serve.Slo.burn_1m;
  Alcotest.(check (float 1e-6)) "1h burn" 5. s.Serve.Slo.burn_1h;
  Alcotest.(check (float 1e-9)) "objective" 50. s.Serve.Slo.objective_ms;
  Alcotest.(check (float 1e-9)) "target" 0.9 s.Serve.Slo.target;
  (* 90 seconds later the minute window has forgotten, the hour has not. *)
  now := 1090;
  let s = burn () in
  Alcotest.(check (float 1e-6)) "1m window expired" 0. s.Serve.Slo.burn_1m;
  Alcotest.(check (float 1e-6)) "1h window remembers" 5. s.Serve.Slo.burn_1h;
  (* A shed burns budget with no latency at all. *)
  Serve.Slo.record_bad slo;
  let s = burn () in
  Alcotest.(check (float 1e-6)) "shed burns 1m" 10. s.Serve.Slo.burn_1m;
  (* Past the hour everything ages out. *)
  now := 1000 + 3700;
  let s = burn () in
  Alcotest.(check (float 1e-6)) "1h window expired" 0. s.Serve.Slo.burn_1h

(* Window-rollover boundaries: a bucket written at second [t] belongs to
   the trailing w-second window iff its stamp is in (now - w, now] — so it
   ages out at exactly [t + 60] (resp. [t + 3600]), not one second
   before. *)
let test_slo_rollover () =
  let now = ref 5000 in
  let slo =
    Serve.Slo.create ~now_s:(fun () -> !now) ~objective_ms:10. ~target:0.5 ()
  in
  let burn () = Serve.Slo.snapshot slo in
  (* One bad request: the whole window is bad, budget is 0.5 -> burn 2. *)
  Serve.Slo.record slo ~latency_s:1.0;
  Alcotest.(check (float 1e-9)) "fresh 1m" 2. (burn ()).Serve.Slo.burn_1m;
  Alcotest.(check (float 1e-9)) "fresh 1h" 2. (burn ()).Serve.Slo.burn_1h;
  (* 59 s later the request is still inside the minute window... *)
  now := 5000 + 59;
  Alcotest.(check (float 1e-9)) "59 s: still in 1m" 2.
    (burn ()).Serve.Slo.burn_1m;
  (* ...and at exactly 60 s it has rolled out, while the hour remembers. *)
  now := 5000 + 60;
  Alcotest.(check (float 1e-9)) "60 s: out of 1m" 0.
    (burn ()).Serve.Slo.burn_1m;
  Alcotest.(check (float 1e-9)) "60 s: still in 1h" 2.
    (burn ()).Serve.Slo.burn_1h;
  (* The same boundary for the hour window: in at 3599, out at 3600. *)
  now := 5000 + 3599;
  Alcotest.(check (float 1e-9)) "3599 s: still in 1h" 2.
    (burn ()).Serve.Slo.burn_1h;
  now := 5000 + 3600;
  Alcotest.(check (float 1e-9)) "3600 s: out of 1h" 0.
    (burn ()).Serve.Slo.burn_1h;
  (* One full ring revolution later the write lands on the same physical
     bucket; its stale contents must be cleared, not accumulated. *)
  Serve.Slo.record slo ~latency_s:0.001;
  Alcotest.(check (float 1e-9)) "ring bucket reused clean, 1m" 0.
    (burn ()).Serve.Slo.burn_1m;
  Alcotest.(check (float 1e-9)) "ring bucket reused clean, 1h" 0.
    (burn ()).Serve.Slo.burn_1h;
  Serve.Slo.record_bad slo;
  (* 1 bad of 2 in-window requests over a 0.5 budget: burn 1. *)
  Alcotest.(check (float 1e-9)) "burn after reuse" 1.
    (burn ()).Serve.Slo.burn_1m

(* --- stats reply carries the SLO over the wire ----------------------- *)

let test_stats_slo_wire () =
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      jobs = Some 1;
      slo_objective_ms = 25.;
      slo_target = 0.99;
    }
  in
  let server = Serve.Server.start ~config () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () ->
      let reply = Serve.Server.handle_line server {|{"cmd": "stats"}|} in
      let payload = unwrap (Protocol.unwrap_reply (unwrap (Json.of_string reply))) in
      let stats = unwrap (Protocol.stats_reply_of_json payload) in
      Alcotest.(check (float 1e-9))
        "objective on the wire" 25. stats.Protocol.slo_objective_ms;
      Alcotest.(check (float 1e-9))
        "target on the wire" 0.99 stats.Protocol.slo_target;
      (* An exposition from an older server (no "slo" member) still
         parses, with the SLO zeroed. *)
      let stripped =
        match payload with
        | Json.Obj fields ->
            Json.Obj (List.filter (fun (k, _) -> k <> "slo") fields)
        | json -> json
      in
      let old = unwrap (Protocol.stats_reply_of_json stripped) in
      Alcotest.(check (float 1e-9))
        "older server defaults" 0. old.Protocol.slo_objective_ms)

(* --- shard-labelled Prometheus merge --------------------------------- *)

let test_promerge () =
  let shard_a =
    "# HELP requests_total Requests.\n\
     # TYPE requests_total counter\n\
     requests_total{outcome=\"ok\"} 5\n\
     requests_total{outcome=\"shed\"} 1\n\
     # HELP latency_seconds Latency.\n\
     # TYPE latency_seconds histogram\n\
     latency_seconds_bucket{le=\"0.1\"} 4\n\
     latency_seconds_bucket{le=\"+Inf\"} 6\n\
     latency_seconds_sum 0.42\n\
     latency_seconds_count 6\n"
  and shard_b =
    "# HELP requests_total Requests.\n\
     # TYPE requests_total counter\n\
     requests_total{outcome=\"ok\"} 2\n"
  in
  let merged = Cluster.Promerge.merge [ ("b", shard_b); ("a", shard_a) ] in
  Alcotest.(check string)
    "order-independent" merged
    (Cluster.Promerge.merge [ ("a", shard_a); ("b", shard_b) ]);
  let expected =
    "# HELP latency_seconds Latency.\n\
     # TYPE latency_seconds histogram\n\
     latency_seconds_bucket{shard=\"a\",le=\"0.1\"} 4\n\
     latency_seconds_bucket{shard=\"a\",le=\"+Inf\"} 6\n\
     latency_seconds_sum{shard=\"a\"} 0.42\n\
     latency_seconds_count{shard=\"a\"} 6\n\
     # HELP requests_total Requests.\n\
     # TYPE requests_total counter\n\
     requests_total{shard=\"a\",outcome=\"ok\"} 5\n\
     requests_total{shard=\"a\",outcome=\"shed\"} 1\n\
     requests_total{shard=\"b\",outcome=\"ok\"} 2\n"
  in
  Alcotest.(check string) "golden merge" expected merged;
  Alcotest.(check string) "empty merge" "" (Cluster.Promerge.merge [])

let suite =
  [
    Alcotest.test_case "trace-id hex round-trip" `Quick test_id_hex;
    Alcotest.test_case "ambient context links spans" `Quick
      test_context_linkage;
    Alcotest.test_case "wire trace envelope" `Quick test_envelope;
    Alcotest.test_case "merge is order-independent" `Quick
      test_merge_determinism;
    Alcotest.test_case "zero-span trace merges" `Quick test_empty_trace_merge;
    Alcotest.test_case "trace file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "propagation across peered servers" `Slow
      test_cluster_propagation;
    Alcotest.test_case "request journal" `Quick test_journal;
    Alcotest.test_case "slo burn windows" `Quick test_slo;
    Alcotest.test_case "slo window rollover" `Quick test_slo_rollover;
    Alcotest.test_case "stats carries the slo" `Quick test_stats_slo_wire;
    Alcotest.test_case "prometheus shard merge" `Quick test_promerge;
  ]
