(* The zero-allocation estimator kernel (lib/core/kernel.ml): flat evaluators
   against the list-based reference paths, the incremental group basis, the
   batched engine entry points, and the warm-path allocation budget. *)

open Contention

let arrays_of loads =
  let n = List.length loads in
  let p = Array.make (Int.max 1 n) 0.
  and mu = Array.make (Int.max 1 n) 0.
  and tau = Array.make (Int.max 1 n) 0. in
  List.iteri
    (fun i (l : Prob.t) ->
      p.(i) <- l.p;
      mu.(i) <- l.mu;
      tau.(i) <- l.tau)
    loads;
  (p, mu, tau)

let others loads t = List.filteri (fun i _ -> i <> t) loads

(* The evaluators must reproduce the reference implementations bit for bit —
   not merely within a tolerance — because estimate_prepared answers must
   equal the pre-kernel engine's on every golden pin and serve cache key. *)
let prop_evaluators_bit_match =
  Fixtures.qcheck_case "evaluators = list paths, bitwise"
    (Fixtures.load_gen ~max_actors:8 ())
    (fun loads ->
      let n = List.length loads in
      n = 0
      ||
      let p, mu, tau = arrays_of loads in
      let s = Kernel.scratch () in
      Kernel.reserve_group s n;
      let out = Array.make n 0. in
      let ok = ref true in
      let check expected t =
        if not (Float.equal expected out.(t)) then ok := false
      in
      Kernel.wc_into ~tau ~off:0 ~n ~out;
      List.iteri (fun t _ -> check (Wcrt.waiting_time (others loads t)) t) loads;
      List.iter
        (fun order ->
          Kernel.order_into s ~order ~p ~mu ~off:0 ~n ~out;
          List.iteri
            (fun t _ -> check (Approx.waiting_time ~order (others loads t)) t)
            loads)
        [ 2; 3; 4; 6 ];
      Kernel.exact_into s ~p ~mu ~off:0 ~n ~out;
      List.iteri (fun t _ -> check (Exact.waiting_time (others loads t)) t) loads;
      Kernel.comp_into s ~p ~mu ~off:0 ~n ~out;
      List.iteri (fun t _ -> check (Compose.waiting_time (others loads t)) t) loads;
      !ok)

(* ------------------------------------------------------------------ *)
(* Incremental group state *)

let fill_group loads =
  let g = Kernel.Group.create () in
  List.iteri
    (fun i (l : Prob.t) -> Kernel.Group.add g ~id:i ~p:l.p ~mu:l.mu ~tau:l.tau)
    loads;
  g

let prop_group_incremental_updates =
  (* k random single-member changes via the O(n) deconvolve/refold delta must
     leave the same basis as the O(n²) rebuild. *)
  Fixtures.qcheck_case "incremental updates = recompute"
    QCheck2.Gen.(pair (Fixtures.load_gen ~max_actors:8 ()) (int_range 0 1_000_000))
    (fun (loads, salt) ->
      let n = List.length loads in
      n = 0
      ||
      let g = fill_group loads in
      let rng = Sdfgen.Rng.create salt in
      for _ = 1 to 6 do
        Kernel.Group.update g ~id:(Sdfgen.Rng.int rng n)
          ~p:(Sdfgen.Rng.float rng 1.)
          ~mu:(1. +. Sdfgen.Rng.float rng 50.)
          ~tau:(2. +. Sdfgen.Rng.float rng 100.)
      done;
      let incremental = Array.sub (Kernel.Group.es g) 0 (n + 1) in
      Kernel.Group.recompute g;
      let rebuilt = Array.sub (Kernel.Group.es g) 0 (n + 1) in
      Array.for_all2 (fun a b -> Fixtures.float_eq ~eps:1e-9 a b) incremental rebuilt)

let prop_group_remove =
  (* ⊖ half the members: waits must match a group built from the survivors. *)
  Fixtures.qcheck_case "remove = rebuild from survivors"
    (Fixtures.load_gen ~max_actors:8 ())
    (fun loads ->
      let n = List.length loads in
      n < 2
      ||
      let g = fill_group loads in
      List.iteri
        (fun i _ -> if i mod 2 = 1 then Kernel.Group.remove g ~id:i)
        loads;
      let survivors = List.filteri (fun i _ -> i mod 2 = 0) loads in
      let fresh = Kernel.Group.create () in
      List.iteri
        (fun k (l : Prob.t) ->
          Kernel.Group.add fresh ~id:(2 * k) ~p:l.p ~mu:l.mu ~tau:l.tau)
        survivors;
      let close a b = Fixtures.float_eq ~eps:1e-9 a b in
      Kernel.Group.size g = List.length survivors
      && close
           (Kernel.Group.exact_waiting g ~excluding:None)
           (Kernel.Group.exact_waiting fresh ~excluding:None)
      && close
           (Kernel.Group.order_waiting g ~order:2 ~excluding:None)
           (Kernel.Group.order_waiting fresh ~order:2 ~excluding:None)
      && close
           (Kernel.Group.wc_waiting g ~excluding:None)
           (Kernel.Group.wc_waiting fresh ~excluding:None))

let prop_group_waiting_matches_lists =
  (* Queries from the maintained basis agree with the list kernels, both for
     an admitted member (excluding itself) and for an outside observer. *)
  Fixtures.qcheck_case "group waits = list kernels"
    (Fixtures.load_gen ~max_actors:8 ())
    (fun loads ->
      let n = List.length loads in
      n = 0
      ||
      let g = fill_group loads in
      let close a b = Fixtures.float_eq ~eps:1e-9 a b in
      let per_member =
        List.for_all
          (fun t ->
            let rest = others loads t in
            let excluding = Some t in
            close (Kernel.Group.exact_waiting g ~excluding) (Exact.waiting_time rest)
            && close
                 (Kernel.Group.order_waiting g ~order:4 ~excluding)
                 (Approx.waiting_time ~order:4 rest)
            && close (Kernel.Group.wc_waiting g ~excluding) (Wcrt.waiting_time rest))
          (List.init n Fun.id)
      in
      per_member
      && close (Kernel.Group.exact_waiting g ~excluding:None) (Exact.waiting_time loads)
      && close (Kernel.Group.wc_waiting g ~excluding:None) (Wcrt.waiting_time loads))

let test_group_errors () =
  let g = Kernel.Group.create () in
  Kernel.Group.add g ~id:1 ~p:0.5 ~mu:10. ~tau:20.;
  (match Kernel.Group.add g ~id:1 ~p:0.2 ~mu:1. ~tau:2. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate id accepted");
  (match Kernel.Group.add g ~id:2 ~p:1.5 ~mu:1. ~tau:2. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "p > 1 accepted");
  (match Kernel.Group.remove g ~id:9 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown id removed");
  (match Kernel.Group.order_waiting g ~order:1 ~excluding:None with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "order 1 accepted");
  (match Kernel.Group.exact_waiting g ~excluding:(Some 9) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown exclusion accepted");
  Alcotest.(check bool) "member" true (Kernel.Group.mem g 1);
  Kernel.Group.remove g ~id:1;
  Alcotest.(check int) "emptied" 0 (Kernel.Group.size g);
  Fixtures.check_float "empty wait" 0. (Kernel.Group.exact_waiting g ~excluding:None)

(* ------------------------------------------------------------------ *)
(* Flat maximum cycle ratio *)

let test_graph_validation () =
  (match Kernel.graph ~nnodes:2 ~name:"g" [| (0, 1, 0, -1) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted");
  (match Kernel.graph ~nnodes:2 ~name:"g" [| (0, 5, 0, 1) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "endpoint out of range accepted");
  let s = Kernel.scratch () in
  let out = [| 0. |] in
  let dag = Kernel.graph ~nnodes:2 ~name:"dag" [| (0, 1, 0, 1) |] in
  (match Kernel.period_into s dag ~exec:[| 1.; 2. |] ~exec_off:0 ~out ~out_idx:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "acyclic graph accepted");
  let zd = Kernel.graph ~nnodes:2 ~name:"zd" [| (0, 1, 0, 0); (1, 0, 1, 0) |] in
  (match Kernel.period_into s zd ~exec:[| 1.; 2. |] ~exec_off:0 ~out ~out_idx:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero-delay cycle accepted")

let test_period_known_value () =
  (* Two-node ring, one token per edge: period = (3 + 5) / 2. *)
  let s = Kernel.scratch () in
  let g = Kernel.graph ~nnodes:2 ~name:"ring" [| (0, 1, 0, 1); (1, 0, 1, 1) |] in
  let out = [| 0. |] in
  Kernel.period_into s g ~exec:[| 3.; 5. |] ~exec_off:0 ~out ~out_idx:0;
  Fixtures.check_float ~eps:1e-8 "ring period" 4. out.(0);
  (* A second cycle through node 2 dominating the ratio: (3 + 9) / 1 = 12. *)
  let g2 =
    Kernel.graph ~nnodes:3 ~name:"two-cycles"
      [| (0, 1, 0, 1); (1, 0, 1, 1); (0, 2, 0, 0); (2, 0, 2, 1) |]
  in
  Kernel.period_into s g2 ~exec:[| 3.; 5.; 9. |] ~exec_off:0 ~out ~out_idx:0;
  Fixtures.check_float ~eps:1e-8 "critical cycle" 12. out.(0)

(* ------------------------------------------------------------------ *)
(* Engine equivalence and batching *)

let small_workload () = Exp.Workload.make ~seed:11 ~num_apps:4 ~procs:3 ()

let engine_estimators =
  [
    Analysis.Worst_case;
    Analysis.Order 2;
    Analysis.Order 3;
    Analysis.Order 4;
    Analysis.Composability;
    Analysis.Exact;
  ]

let check_estimates_equal what (a : Analysis.estimate) (b : Analysis.estimate) =
  if not (Float.equal a.period b.period) then
    Alcotest.failf "%s: period %.17g <> %.17g" what a.period b.period;
  if not (Array.for_all2 Float.equal a.waiting_times b.waiting_times) then
    Alcotest.failf "%s: waiting times differ" what;
  if not (Array.for_all2 Float.equal a.response_times b.response_times) then
    Alcotest.failf "%s: response times differ" what

let test_engine_bit_identity () =
  (* The kernel engine must return bit-identical estimates to the list-based
     reference on every use-case and estimator — this is what lets it sit
     under the golden pins and the serve caches without re-pinning them, and
     it exercises the certified probe-skipping of the period search. *)
  let w = small_workload () in
  let caches = Array.map Analysis.prepare w.apps in
  List.iter
    (fun uc ->
      let pairs =
        List.map (fun i -> (w.apps.(i), caches.(i))) (Usecase.to_list uc)
      in
      List.iter
        (fun est ->
          let name = Analysis.estimator_name est in
          List.iter2
            (check_estimates_equal name)
            (Analysis.estimate_prepared est pairs)
            (Analysis.estimate_prepared_reference est pairs))
        engine_estimators)
    (Usecase.all ~napps:(Array.length w.apps))

let test_batch_bit_identity () =
  let w = small_workload () in
  let caches = Array.map Analysis.prepare w.apps in
  let prepared = Analysis.prepare_workload ~caches w.apps in
  let ucs = Usecase.all ~napps:(Array.length w.apps) in
  List.iter
    (fun est ->
      let name = Analysis.estimator_name est in
      List.iter2
        (fun uc batched ->
          let pairs =
            List.map (fun i -> (w.apps.(i), caches.(i))) (Usecase.to_list uc)
          in
          List.iter2
            (check_estimates_equal name)
            batched
            (Analysis.estimate_prepared est pairs))
        ucs
        (Analysis.estimate_batch est prepared ucs))
    engine_estimators

let test_periods_into_matches () =
  let w = small_workload () in
  let caches = Array.map Analysis.prepare w.apps in
  let prepared = Analysis.prepare_workload ~caches w.apps in
  let ws = Analysis.workspace () in
  let out = Array.make (Array.length w.apps) 0. in
  List.iter
    (fun uc ->
      List.iter
        (fun est ->
          let active =
            Analysis.estimate_periods_into ws est prepared ~usecase:uc ~out
          in
          let pairs =
            List.map (fun i -> (w.apps.(i), caches.(i))) (Usecase.to_list uc)
          in
          let reference = Analysis.estimate_prepared_reference est pairs in
          Alcotest.(check int) "active count" (List.length reference) active;
          List.iteri
            (fun k (r : Analysis.estimate) ->
              if not (Float.equal r.period out.(k)) then
                Alcotest.failf "period %d: %.17g <> %.17g" k r.period out.(k))
            reference)
        engine_estimators)
    (Usecase.all ~napps:(Array.length w.apps))

let test_warm_path_allocates_nothing () =
  (* The allocation budget: after warm-up, a full pass of
     estimate_periods_into over every use-case must allocate zero minor-heap
     words.  Both deltas below include the same constant cost (the boxed
     float Gc.minor_words itself returns); the second window runs twice the
     passes, so any per-call allocation would make it strictly larger. *)
  let w = small_workload () in
  let prepared = Analysis.prepare_workload w.apps in
  let ws = Analysis.workspace () in
  let ucs = Array.of_list (Usecase.all ~napps:(Array.length w.apps)) in
  let out = Array.make (Array.length w.apps) 0. in
  let est = Analysis.Order 4 in
  let pass n =
    for _ = 1 to n do
      for u = 0 to Array.length ucs - 1 do
        ignore (Analysis.estimate_periods_into ws est prepared ~usecase:ucs.(u) ~out)
      done
    done
  in
  pass 2;
  (* warm-up: buffers reach their high-water mark *)
  let w0 = Gc.minor_words () in
  pass 1;
  let w1 = Gc.minor_words () in
  pass 2;
  let w2 = Gc.minor_words () in
  let single = w1 -. w0 and double = w2 -. w1 in
  if double <> single then
    Alcotest.failf "warm path allocates: %g minor words over one pass, %g over two"
      single double

let suite =
  [
    prop_evaluators_bit_match;
    prop_group_incremental_updates;
    prop_group_remove;
    prop_group_waiting_matches_lists;
    Alcotest.test_case "group errors" `Quick test_group_errors;
    Alcotest.test_case "graph validation" `Quick test_graph_validation;
    Alcotest.test_case "period known values" `Quick test_period_known_value;
    Alcotest.test_case "engine bit-identity" `Quick test_engine_bit_identity;
    Alcotest.test_case "batch bit-identity" `Quick test_batch_bit_identity;
    Alcotest.test_case "periods-into agreement" `Quick test_periods_into_matches;
    Alcotest.test_case "warm path allocation budget" `Quick test_warm_path_allocates_nothing;
  ]
