(* Margin math: z-score pins, quantile order statistics, golden margins on
   uniform / bimodal / heavy-tail execution-time distributions, and the
   replay coverage oracle (DESIGN §15). *)

open Contention

let check_float = Fixtures.check_float

(* --- standard-normal quantile pins (Acklam, |rel err| < 1.2e-9) --------- *)

let test_z_pins () =
  check_float ~eps:1e-6 "z(0.90)" 1.6448536 (Margin.z_of_confidence 0.90);
  check_float ~eps:1e-6 "z(0.95)" 1.9599640 (Margin.z_of_confidence 0.95);
  check_float ~eps:1e-6 "z(0.99)" 2.5758293 (Margin.z_of_confidence 0.99);
  (* Symmetric two-sided: half the mass inside ±z(0.5) ~ 0.6745. *)
  check_float ~eps:1e-6 "z(0.50)" 0.6744898 (Margin.z_of_confidence 0.50);
  (match Margin.z_of_confidence 0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "confidence 0 accepted");
  match Margin.z_of_confidence 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "confidence 1 accepted"

let test_method_names () =
  let ok s m =
    match Margin.method_of_string s with
    | Ok m' when m' = m -> ()
    | Ok _ -> Alcotest.failf "%s parsed to the wrong method" s
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "z-score" Margin.Z_score;
  ok "z" Margin.Z_score;
  ok "quantile" Margin.Quantile;
  ok "q" Margin.Quantile;
  (match Margin.method_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus method accepted");
  Alcotest.(check string)
    "round-trip" "quantile"
    (Margin.method_to_string Margin.Quantile)

let test_quantile_helper () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  (* Sorted copy is [1;2;3;4;5]; linear interpolation on (n-1)q. *)
  check_float "q0" 1. (Margin.quantile xs ~q:0.);
  check_float "q1" 5. (Margin.quantile xs ~q:1.);
  check_float "median" 3. (Margin.quantile xs ~q:0.5);
  check_float "q0.25" 2. (Margin.quantile xs ~q:0.25);
  check_float "q0.625" 3.5 (Margin.quantile xs ~q:0.625);
  (match Margin.quantile [||] ~q:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty array accepted");
  match Margin.quantile xs ~q:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 accepted"

let test_of_bounds () =
  let m = Margin.of_bounds ~confidence:0.95 ~period:100. ~lo:90. ~hi:112. in
  (match Margin.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "of_bounds invalid: %s" e);
  check_float "mean is period" 100. m.Margin.mean;
  check_float "implied std" (22. /. (2. *. Margin.z_of_confidence 0.95))
    m.Margin.std;
  check_float "width" 22. (Margin.width m);
  check_float "rel width" 0.22 (Margin.rel_width m);
  Alcotest.(check bool) "covers period" true (Margin.covers m 100.);
  Alcotest.(check bool) "covers lo" true (Margin.covers m 90.);
  Alcotest.(check bool) "excludes below" false (Margin.covers m 89.9);
  (* Bounds are clamped to contain the point estimate. *)
  let clamped = Margin.of_bounds ~confidence:0.9 ~period:80. ~lo:90. ~hi:112. in
  Alcotest.(check bool) "clamped covers period" true
    (Margin.covers clamped 80.)

let test_of_samples () =
  let xs = Array.init 101 (fun i -> 100. +. float_of_int i) in
  let m = Margin.of_samples ~confidence:0.9 ~period:150. xs in
  (match Margin.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "of_samples invalid: %s" e);
  check_float "sample mean" 150. m.Margin.mean;
  (* Samples 100..200: the 5%/95% order statistics. *)
  check_float "lo at 5%" 105. m.Margin.lo;
  check_float "hi at 95%" 195. m.Margin.hi;
  Alcotest.(check int) "draw count" 101 m.Margin.samples;
  match Margin.of_samples ~confidence:0.9 ~period:1. [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample set accepted"

let test_validate_rejects () =
  let base =
    Margin.of_bounds ~confidence:0.95 ~period:100. ~lo:90. ~hi:110.
  in
  let bad msg m =
    match Margin.validate m with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" msg
  in
  bad "confidence 1.5" { base with Margin.confidence = 1.5 };
  bad "lo > hi" { base with Margin.lo = 120. };
  bad "period outside" { base with Margin.period = 80. };
  bad "negative std" { base with Margin.std = -1. };
  bad "nan bound" { base with Margin.hi = Float.nan }

(* --- golden margins served by the admission controller ------------------ *)

(* Figure 2's A (with per-actor distributions) sharing two processors with a
   constant-time B; the served margin for A is deterministic in
   (spec, population). *)
let scenario dists =
  let ctl = Admission.create ~procs:2 () in
  let a =
    Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 0 |]
      ?distributions:dists
  in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 1; 0; 1 |] in
  (match Admission.try_admit ctl a Admission.best_effort with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "A rejected");
  (match Admission.try_admit ctl b Admission.best_effort with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "B rejected");
  ctl

let spec method_ =
  { Admission.default_margin_spec with Admission.method_ }

let uniform_dists =
  [|
    Dist.Uniform { lo = 80.; hi = 120. };
    Dist.Uniform { lo = 30.; hi = 70. };
    Dist.Uniform { lo = 80.; hi = 120. };
  |]

let bimodal_dists =
  [|
    Dist.Discrete [ (60., 1.); (140., 1.) ];
    Dist.Discrete [ (20., 1.); (80., 1.) ];
    Dist.Discrete [ (60., 1.); (140., 1.) ];
  |]

let heavy_tail_dists =
  [|
    Dist.Exponential { mean = 100. };
    Dist.Exponential { mean = 50. };
    Dist.Exponential { mean = 100. };
  |]

(* The pins: servable bit-for-bit, so the eps only absorbs printf rounding.
   The lower bound clamps at the standalone period (contention never makes
   an application faster), and the quantile upper bound sits below the
   symmetric z bound on all three shapes — the Monte-Carlo draws see the
   actual (right-skewed but bounded-probability) blocking, where the normal
   approximation pays for its symmetry at the top. *)
let golden name dists ~period ~z_hi ~q_hi ~q_mean ~q_std () =
  let ctl = scenario (Some dists) in
  let z = Admission.margin_for ctl (spec Margin.Z_score) "A" in
  let q = Admission.margin_for ctl (spec Margin.Quantile) "A" in
  check_float ~eps:1e-6 (name ^ " period") period z.Margin.period;
  check_float ~eps:1e-6 (name ^ " served point matches") period
    q.Margin.period;
  check_float ~eps:1e-6 (name ^ " z lo clamps at standalone") 300.
    z.Margin.lo;
  check_float ~eps:1e-6 (name ^ " z hi") z_hi z.Margin.hi;
  check_float ~eps:1e-6 (name ^ " q lo clamps at standalone") 300.
    q.Margin.lo;
  check_float ~eps:1e-6 (name ^ " q hi") q_hi q.Margin.hi;
  check_float ~eps:1e-6 (name ^ " q mean") q_mean q.Margin.mean;
  check_float ~eps:1e-6 (name ^ " q std") q_std q.Margin.std;
  Alcotest.(check int) (name ^ " q draws") 200 q.Margin.samples;
  Alcotest.(check int) (name ^ " z draws") 0 z.Margin.samples;
  Alcotest.(check bool) (name ^ " z covers period") true
    (Margin.covers z period);
  Alcotest.(check bool) (name ^ " q covers period") true
    (Margin.covers q period);
  Alcotest.(check bool) (name ^ " quantile tighter than z at the top") true
    (q.Margin.hi < z.Margin.hi);
  (* Margins are deterministic in (spec, population): a re-served quantile
     margin is bit-identical, not just close. *)
  let q' = Admission.margin_for ctl (spec Margin.Quantile) "A" in
  Alcotest.(check bool) (name ^ " reproducible") true (q = q')

let test_golden_uniform =
  golden "uniform" uniform_dists ~period:435.534391535 ~z_hi:723.845912516
    ~q_hi:634.984412754 ~q_mean:408.831278713 ~q_std:94.914246538

let test_golden_bimodal =
  golden "bimodal" bimodal_dists ~period:441.952380952 ~z_hi:748.272177052
    ~q_hi:644.247648671 ~q_mean:413.655997211 ~q_std:99.232720696

let test_golden_heavy_tail =
  golden "heavy tail" heavy_tail_dists ~period:477.380952381
    ~z_hi:917.217985978 ~q_hi:823.858554478 ~q_mean:446.301980481
    ~q_std:144.943650654

(* Heavier tails must widen the served interval: uniform < bimodal < heavy
   at the same confidence, for both methods. *)
let test_tail_ordering () =
  let width dists method_ =
    Margin.width (Admission.margin_for (scenario (Some dists)) (spec method_) "A")
  in
  List.iter
    (fun m ->
      let u = width uniform_dists m
      and b = width bimodal_dists m
      and h = width heavy_tail_dists m in
      Alcotest.(check bool) "uniform < bimodal" true (u < b);
      Alcotest.(check bool) "bimodal < heavy" true (b < h))
    [ Margin.Z_score; Margin.Quantile ]

(* --- the replay coverage oracle ----------------------------------------- *)

let test_margin_coverage () =
  let a =
    Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 0 |]
      ~distributions:uniform_dists
  in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 1; 0; 1 |] in
  let spec = spec Margin.Quantile in
  let cov, violations =
    Check.Oracle.margin_coverage ~procs:2 ~spec ~app:"A" [ a; b ]
  in
  (match violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "coverage violation: %s: %s" v.Check.Oracle.property
        v.Check.Oracle.detail);
  Alcotest.(check int) "200 replays" 200 cov.Check.Oracle.replays;
  (* The acceptance bound: observed coverage within two percentage points
     of the requested confidence (the oracle itself enforces the same). *)
  Alcotest.(check bool) "within 2pp of requested confidence" true
    (cov.Check.Oracle.observed_coverage +. 0.02
    >= spec.Admission.confidence)

(* --- residual-life draws behind the quantile margin --------------------- *)

let grid_mean f n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. f ((float_of_int i +. 0.5) /. float_of_int n)
  done;
  !acc /. float_of_int n

let test_residual_sample_moments () =
  (* The stationary residual draw must average to the analytic mean
     residual life (the inspection-paradox mu the margins are built on). *)
  let mean_residual d =
    grid_mean
      (fun u1 -> grid_mean (fun u2 -> Dist.residual_sample d ~u1 ~u2) 64)
      64
  in
  let close name d =
    let expected = Dist.residual d in
    check_float ~eps:(0.02 *. expected) name expected (mean_residual d)
  in
  close "constant" (Dist.Constant 10.);
  close "uniform" (Dist.Uniform { lo = 4.; hi = 8. });
  close "bimodal" (Dist.Discrete [ (2., 1.); (10., 3.) ]);
  (* Exponential: memoryless, so the residual is again Exp(mean); the
     midpoint grid under-weights the unbounded tail, hence the wider eps. *)
  let d = Dist.Exponential { mean = 5. } in
  check_float ~eps:0.3 "exponential" (Dist.residual d) (mean_residual d);
  Alcotest.(check bool) "deterministic in (u1, u2)" true
    (Dist.residual_sample d ~u1:0.3 ~u2:0.7
    = Dist.residual_sample d ~u1:0.3 ~u2:0.7);
  match Dist.residual_sample d ~u1:1. ~u2:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u1 = 1 accepted"

let suite =
  [
    Alcotest.test_case "z pins" `Quick test_z_pins;
    Alcotest.test_case "method names" `Quick test_method_names;
    Alcotest.test_case "quantile helper" `Quick test_quantile_helper;
    Alcotest.test_case "of_bounds" `Quick test_of_bounds;
    Alcotest.test_case "of_samples" `Quick test_of_samples;
    Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
    Alcotest.test_case "golden: uniform" `Quick test_golden_uniform;
    Alcotest.test_case "golden: bimodal" `Quick test_golden_bimodal;
    Alcotest.test_case "golden: heavy tail" `Quick test_golden_heavy_tail;
    Alcotest.test_case "tail ordering" `Quick test_tail_ordering;
    Alcotest.test_case "replay coverage" `Slow test_margin_coverage;
    Alcotest.test_case "residual-life draws" `Quick
      test_residual_sample_moments;
  ]
