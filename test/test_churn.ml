(* Churn-heavy soak tier: long seeded join/leave/observe streams against the
   incremental admission controller, cross-checked by the from-scratch
   re-fold oracle ({!Check.Fuzz.churn}), plus the {!Kernel.Group}
   deconvolution edge cases and the admission-level metamorphic relations.

   The soak scale is environment-tunable so CI can run a reduced PR budget
   and the full population nightly:
     CHURN_APPS    resident population target   (default 2000)
     CHURN_EVENTS  churn events after ramp-up   (default 1500)
     CHURN_SEED    campaign seed                (default 1) *)

open Contention
module Group = Kernel.Group

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> default

(* --- the quick campaign: every PR runs this ----------------------------- *)

let check_campaign name (r : Check.Fuzz.churn_result) =
  (match r.Check.Fuzz.churn_violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: %s: %s" name v.Check.Metamorphic.property
        v.Check.Metamorphic.detail);
  let c = r.Check.Fuzz.counters in
  (* The tentpole invariant: joins and leaves never re-fold from scratch. *)
  Alcotest.(check int) (name ^ ": full rebuilds pinned") 0
    c.Admission.full_rebuilds;
  Alcotest.(check bool) (name ^ ": did join") true (r.Check.Fuzz.joins > 0);
  Alcotest.(check bool) (name ^ ": did leave") true (r.Check.Fuzz.leaves > 0);
  Alcotest.(check bool)
    (name ^ ": incremental ops dominate")
    true
    (c.Admission.incremental_ops
    >= r.Check.Fuzz.joins + r.Check.Fuzz.leaves);
  (* Drift-triggered refolds are sanctioned but must not storm: they stay a
     bounded fraction of the events so the refold cost amortizes away from
     the hot path (the dense quick config charges ~p·P/4 per non-LIFO ⊖
     across ~3 actors per leave, so one refold per few leaves is the
     expected ceiling there). *)
  let refolds = c.Admission.drift_refolds + c.Admission.group_drift_refolds in
  Alcotest.(check bool)
    (name ^ ": refolds below storm threshold")
    true
    (refolds <= r.Check.Fuzz.churn_events / 4);
  Alcotest.(check bool)
    (name ^ ": guard rebuilds below storm threshold")
    true
    (c.Admission.group_rebuilds <= r.Check.Fuzz.churn_events / 4)

let test_churn_quick () =
  let r = Check.Fuzz.churn ~seed:11 () in
  check_campaign "quick" r;
  Alcotest.(check int) "all events ran" 600 r.Check.Fuzz.churn_events;
  Alcotest.(check bool) "oracle ran" true (r.Check.Fuzz.checks >= 24);
  (* p-composition is exactly invertible; w lags by the bounded residue. *)
  Alcotest.(check bool) "p deviation is rounding noise" true
    (r.Check.Fuzz.max_p_err <= 1e-9);
  Alcotest.(check bool) "w deviation within refold bound" true
    (r.Check.Fuzz.max_w_err
    <= Check.Fuzz.default_churn_config.Check.Fuzz.w_tolerance)

let test_churn_deterministic () =
  let run () =
    let r = Check.Fuzz.churn ~seed:23 () in
    ( r.Check.Fuzz.joins,
      r.Check.Fuzz.leaves,
      r.Check.Fuzz.observes,
      r.Check.Fuzz.max_p_err,
      r.Check.Fuzz.max_w_err,
      List.length r.Check.Fuzz.churn_violations )
  in
  Alcotest.(check bool) "same seed, same campaign" true (run () = run ())

(* Adversarial seeds: campaigns that historically pushed the deconvolution
   guard hardest (observe-heavy re-basing on a near-full population).  Kept
   alongside the corpus replays as regression pins. *)
let test_churn_adversarial_seeds () =
  List.iter
    (fun seed ->
      let config =
        {
          Check.Fuzz.default_churn_config with
          Check.Fuzz.resident = 16;
          events = 400;
          check_every = 10;
        }
      in
      let r = Check.Fuzz.churn ~config ~seed () in
      check_campaign (Printf.sprintf "adversarial seed %d" seed) r)
    [ 3; 17; 404; 9001 ]

(* --- the soak: 2,000+ resident applications per node -------------------- *)

let test_churn_soak () =
  let resident = env_int "CHURN_APPS" 2000 in
  let events = env_int "CHURN_EVENTS" 1500 in
  let seed = env_int "CHURN_SEED" 1 in
  (* Ramp to the resident population first (the join bias admits almost
     every event while under-populated), then churn on top of it; the
     re-fold oracle is O(n²) so it runs on a sparse cadence plus the final
     state. *)
  let config =
    {
      Check.Fuzz.default_churn_config with
      Check.Fuzz.resident;
      events = (2 * resident) + events;
      check_every = resident;
      (* Thousands of light features: keep per-processor utilization near
         one regardless of the population target. *)
      period_slack = Float.max 12. (0.25 *. float_of_int resident);
    }
  in
  let r = Check.Fuzz.churn ~config ~seed () in
  check_campaign "soak" r;
  Alcotest.(check bool)
    (Printf.sprintf "population reached %d" resident)
    true
    (r.Check.Fuzz.joins >= resident);
  Alcotest.(check bool) "w deviation within refold bound" true
    (r.Check.Fuzz.max_w_err <= config.Check.Fuzz.w_tolerance)

(* --- Kernel.Group deconvolution edge cases ------------------------------ *)

let agree ?(eps = 1e-9) name g =
  let es = Group.es g and ref_ = Group.es_reference g in
  for d = 0 to Group.size g do
    if
      Float.abs (es.(d) -. ref_.(d))
      > eps *. Float.max 1.0 (Float.abs ref_.(d))
    then
      Alcotest.failf "%s: degree %d: incremental %.17g vs reference %.17g"
        name d es.(d) ref_.(d)
  done

let test_group_near_one_removal () =
  (* Removing a near-saturated probability from a basis whose co-elements
     are orders of magnitude smaller cancels the subtraction e_j - x·e'_(j-1)
     almost completely: the guard must fall back to an exact refold instead
     of amplifying the cancellation. *)
  let g = Group.create () in
  Group.add g ~id:0 ~p:(1. -. 1e-12) ~mu:5. ~tau:10.;
  Group.add g ~id:1 ~p:1e-9 ~mu:2. ~tau:4.;
  Group.add g ~id:2 ~p:2e-9 ~mu:3. ~tau:6.;
  Group.remove g ~id:0;
  Alcotest.(check int) "size" 2 (Group.size g);
  agree "after near-1 removal" g;
  Alcotest.(check bool) "guard or drift refold fired" true
    (Group.rebuilds g + Group.drift_refolds g >= 1);
  (* The surviving basis keeps answering waits. *)
  Alcotest.(check bool) "wait finite" true
    (Float.is_finite (Group.exact_waiting g ~excluding:None))

let test_group_empty_refill () =
  let g = Group.create () in
  let add id p = Group.add g ~id ~p ~mu:1. ~tau:2. in
  add 0 0.2;
  add 1 0.5;
  add 2 0.8;
  Group.remove g ~id:1;
  Group.remove g ~id:0;
  Group.remove g ~id:2;
  Alcotest.(check int) "empty" 0 (Group.size g);
  Fixtures.check_float "empty basis is the unit" 1. (Group.es g).(0);
  Fixtures.check_float "empty group inflicts no wait" 0.
    (Group.exact_waiting g ~excluding:None);
  (* Refill after total drain: no stale state survives. *)
  add 3 0.4;
  add 4 0.6;
  Alcotest.(check int) "refilled" 2 (Group.size g);
  agree "after drain and refill" g;
  Fixtures.check_float ~eps:1e-12 "e1 = p3 + p4" 1. (Group.es g).(1)

let test_group_update_is_remove_add () =
  let fill g =
    Group.add g ~id:0 ~p:0.25 ~mu:2. ~tau:4.;
    Group.add g ~id:1 ~p:0.5 ~mu:3. ~tau:6.;
    Group.add g ~id:2 ~p:0.75 ~mu:4. ~tau:8.
  in
  let a = Group.create () and b = Group.create () in
  fill a;
  fill b;
  Group.update a ~id:1 ~p:0.6 ~mu:3.5 ~tau:7.;
  Group.remove b ~id:1;
  Group.add b ~id:1 ~p:0.6 ~mu:3.5 ~tau:7.;
  let ea = Group.es a and eb = Group.es b in
  for d = 0 to Group.size a do
    Fixtures.check_float ~eps:1e-9
      (Printf.sprintf "degree %d" d)
      eb.(d) ea.(d)
  done;
  Fixtures.check_float ~eps:1e-9 "same wait"
    (Group.exact_waiting b ~excluding:(Some 0))
    (Group.exact_waiting a ~excluding:(Some 0))

(* --- admission-level metamorphic relations ------------------------------ *)

(* Same draw as {!Check.Fuzz.churn}'s residents: HSDF-expansion isolation
   period (the random state spaces are unbounded) and no saturated actors
   (p = 1 has no ⊖ inverse, which would blur the tight round-trip
   tolerances below). *)
let gen_app rng ~procs ~name =
  let params =
    {
      Sdfgen.Generator.default_params with
      Sdfgen.Generator.actors_min = 2;
      actors_max = 4;
      exec_min = 2;
      exec_max = 20;
    }
  in
  let rec draw attempts =
    let g = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name in
    let app =
      Analysis.app g ~period:(Sdf.Hsdf.period g) ~mapping:(Mapping.modulo ~procs g)
    in
    let saturated =
      Array.exists (fun (l : Prob.t) -> l.p >= 1.) (Analysis.loads app)
    in
    if saturated && attempts < 50 then draw (attempts + 1) else app
  in
  draw 0

let gen_apps rng ~procs n =
  List.init n (fun i -> gen_app rng ~procs ~name:(Printf.sprintf "M%d" i))

let no_violations name = function
  | [] -> ()
  | (v : Check.Metamorphic.violation) :: _ ->
      Alcotest.failf "%s: %s: %s" name v.property v.detail

let test_meta_join_leave_roundtrip () =
  let rng = Sdfgen.Rng.create 5 in
  let residents = gen_apps rng ~procs:3 6 in
  let extra = gen_app rng ~procs:3 ~name:"EXTRA" in
  no_violations "join-leave round-trip"
    (Check.Metamorphic.join_leave_roundtrip ~procs:3 residents extra)

let test_meta_churn_order_independence () =
  let rng = Sdfgen.Rng.create 6 in
  let apps = gen_apps rng ~procs:3 8 in
  no_violations "churn-order independence"
    (Check.Metamorphic.churn_order_independence rng ~procs:3 apps)

let test_meta_margin_monotonicity () =
  let rng = Sdfgen.Rng.create 7 in
  let apps = gen_apps rng ~procs:2 5 in
  no_violations "margin monotonicity"
    (Check.Metamorphic.margin_monotonicity ~procs:2 apps)

let suite =
  [
    Alcotest.test_case "quick campaign" `Quick test_churn_quick;
    Alcotest.test_case "campaign is deterministic" `Quick
      test_churn_deterministic;
    Alcotest.test_case "adversarial seeds" `Quick test_churn_adversarial_seeds;
    Alcotest.test_case "soak (CHURN_APPS residents)" `Slow test_churn_soak;
    Alcotest.test_case "group near-1 removal" `Quick
      test_group_near_one_removal;
    Alcotest.test_case "group drain and refill" `Quick test_group_empty_refill;
    Alcotest.test_case "group update = remove;add" `Quick
      test_group_update_is_remove_add;
    Alcotest.test_case "meta join-leave round-trip" `Quick
      test_meta_join_leave_roundtrip;
    Alcotest.test_case "meta churn-order independence" `Quick
      test_meta_churn_order_independence;
    Alcotest.test_case "meta margin monotonicity" `Quick
      test_meta_margin_monotonicity;
  ]
