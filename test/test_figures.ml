(* Golden pins for the evaluation artefacts (Figure 5, Table 1, Figure 6)
   on a small fixed-seed workload.  Everything here is deterministic — the
   sweep is bit-identical across job counts and the chart renderers are
   pure — so any drift means the estimator algebra, the simulator, or the
   rendering changed.  render_timing is wall-clock-dependent and is
   deliberately not pinned. *)

let workload () =
  Exp.Workload.make ~seed:7 ~num_apps:3 ~procs:2
    ~params:
      {
        Sdfgen.Generator.default_params with
        actors_min = 3;
        actors_max = 4;
        exec_min = 2;
        exec_max = 12;
      }
    ()

let sweep w = Exp.Sweep.run ~horizon:10_000. w

(* (method, throughput %, period %, complexity) in the paper's row order. *)
let golden_table1 =
  [
    ("Worst Case", 35.028888523910162, 65.053350640923142, "O(n)");
    ("Composability", 11.206347302287439, 9.5654775620192805, "O(n)");
    ("Fourth Order", 11.155772118240135, 9.4737929504828475, "O(n^4)");
    ("Second Order", 11.198243252102232, 9.5471210601367087, "O(n^2)");
  ]

let golden_fig6 =
  [
    ( "Analyzed Worst Case",
      [| 20.614035087559262; 75.648148147864475; 88.303071180404388 |] );
    ( "Probabilistic Fourth Order",
      [| 2.0251521658265861; 10.806518591241732; 14.256982453621342 |] );
    ( "Probabilistic Second Order",
      [| 2.0251521658265861; 10.90414717980577; 14.355037715108708 |] );
    ( "Composability-based",
      [| 2.0251521658265861; 10.921920027471616; 14.392918027307298 |] );
  ]

let legend_order =
  [
    "Analyzed Worst Case";
    "Probabilistic Fourth Order";
    "Probabilistic Second Order";
    "Composability-based";
    "Simulated";
    "Simulated Worst Case";
    "Original";
  ]

let test_table1_golden () =
  let s = sweep (workload ()) in
  let rows = Exp.Figures.table1 s in
  Alcotest.(check int) "row count" (List.length golden_table1) (List.length rows);
  List.iter2
    (fun (name, tp, per, cx) (r : Exp.Figures.table1_row) ->
      Alcotest.(check string) "method" name r.method_name;
      Alcotest.(check string) (name ^ " complexity") cx r.complexity;
      Fixtures.check_float ~eps:1e-9 (name ^ " throughput")  tp
        r.throughput_pct;
      Fixtures.check_float ~eps:1e-9 (name ^ " period")  per r.period_pct)
    golden_table1 rows;
  let rendered = Exp.Figures.render_table1 rows in
  Alcotest.(check bool) "title" true
    (Fixtures.contains ~affix:"Table 1: measured inaccuracy" rendered);
  List.iter
    (fun (name, _, _, cx) ->
      Alcotest.(check bool) (name ^ " in render") true
        (Fixtures.contains ~affix:name rendered);
      Alcotest.(check bool) (cx ^ " in render") true
        (Fixtures.contains ~affix:cx rendered))
    golden_table1;
  Alcotest.(check string) "render deterministic" rendered
    (Exp.Figures.render_table1 (Exp.Figures.table1 s))

let test_fig5 () =
  let w = workload () in
  let f = Exp.Figures.fig5 ~horizon:10_000. w in
  Alcotest.(check (array string)) "app names" (Exp.Workload.names w) f.app_names;
  Alcotest.(check (list string)) "legend order" legend_order
    (List.map fst f.series);
  let series name = List.assoc name f.series in
  Array.iter
    (fun v -> Fixtures.check_float ~eps:0. "original normalised"  1. v)
    (series "Original");
  (* Normalisation sanity: every period is at least the isolation period,
     and the analyzed worst case dominates both simulated series. *)
  let wc = series "Analyzed Worst Case" in
  List.iter
    (fun name ->
      Array.iteri
        (fun i v ->
          if v < 1. -. 1e-6 then
            Alcotest.failf "%s app %d below isolation: %g" name i v;
          if v > wc.(i) +. 1e-6 then
            Alcotest.failf "%s app %d above worst case: %g > %g" name i v
              wc.(i))
        (series name))
    [ "Simulated"; "Simulated Worst Case" ];
  (* The whole figure is deterministic, renderer included. *)
  let f' = Exp.Figures.fig5 ~horizon:10_000. w in
  Alcotest.(check string) "fig5 deterministic"
    (Exp.Figures.render_fig5 f)
    (Exp.Figures.render_fig5 f');
  let rendered = Exp.Figures.render_fig5 f in
  Alcotest.(check bool) "fig5 title" true
    (Fixtures.contains ~affix:"Figure 5: period of applications" rendered);
  Array.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in fig5 render") true
        (Fixtures.contains ~affix:name rendered))
    f.app_names

let test_fig6_golden () =
  let s = sweep (workload ()) in
  let f = Exp.Figures.fig6 s in
  Alcotest.(check (array (float 0.))) "sizes 1..n" [| 1.; 2.; 3. |] f.sizes;
  Alcotest.(check (list string)) "series names"
    (List.map fst golden_fig6)
    (List.map fst f.inaccuracy);
  List.iter
    (fun (name, expected) ->
      let actual = List.assoc name f.inaccuracy in
      Array.iteri
        (fun i e ->
          Fixtures.check_float
            (Printf.sprintf "%s at size %d" name (i + 1))
            ~eps:1e-9 e actual.(i))
        expected)
    golden_fig6;
  let rendered = Exp.Figures.render_fig6 f in
  Alcotest.(check bool) "fig6 title" true
    (Fixtures.contains ~affix:"Figure 6: inaccuracy" rendered);
  Alcotest.(check string) "fig6 render deterministic" rendered
    (Exp.Figures.render_fig6 f)

let test_complexity_of () =
  List.iter
    (fun (est, expected) ->
      Alcotest.(check string) expected expected (Exp.Figures.complexity_of est))
    [
      (Contention.Analysis.Worst_case, "O(n)");
      (Contention.Analysis.Composability, "O(n)");
      (Contention.Analysis.Order 2, "O(n^2)");
      (Contention.Analysis.Order 4, "O(n^4)");
      (Contention.Analysis.Exact, "O(n^n)");
    ]

let test_render_timing_smoke () =
  (* Wall-clock numbers are machine-dependent; only the shape is checked. *)
  let s = sweep (workload ()) in
  let rendered = Exp.Figures.render_timing s in
  Alcotest.(check bool) "timing header" true
    (Fixtures.contains ~affix:"Timing: full use-case sweep" rendered);
  Alcotest.(check bool) "mentions simulation" true
    (Fixtures.contains ~affix:"simulation of 7 use-cases" rendered)

let suite =
  [
    Alcotest.test_case "complexity strings" `Quick test_complexity_of;
    Alcotest.test_case "Table 1 golden on fixed workload" `Slow
      test_table1_golden;
    Alcotest.test_case "Figure 5 structure and determinism" `Slow test_fig5;
    Alcotest.test_case "Figure 6 golden on fixed workload" `Slow
      test_fig6_golden;
    Alcotest.test_case "timing render smoke" `Slow test_render_timing_smoke;
  ]
