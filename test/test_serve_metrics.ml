(* Serve.Metrics percentile arithmetic, pinned deterministically.

   The snapshot computes percentiles with Repro_stats.Stats.percentile
   (linear interpolation at rank q/100 * (n-1)) over a 4096-entry ring of
   the most recent latencies, so every expected value below is exact and
   the checks use a tight epsilon. *)

let eps = 1e-9

let check = Fixtures.check_float ~eps

let test_empty () =
  let m = Serve.Metrics.create () in
  let s = Serve.Metrics.snapshot m in
  Alcotest.(check int) "no samples" 0 s.latency_samples;
  check "mean" 0. s.latency_mean_us;
  check "p50" 0. s.latency_p50_us;
  check "p90" 0. s.latency_p90_us;
  check "p99" 0. s.latency_p99_us;
  check "max" 0. s.latency_max_us

let test_single_sample () =
  let m = Serve.Metrics.create () in
  Serve.Metrics.record m ~cmd:"ping" ~latency_s:250e-6;
  let s = Serve.Metrics.snapshot m in
  Alcotest.(check int) "one sample" 1 s.latency_samples;
  (* With a single sample every percentile is that sample. *)
  check "mean" 250. s.latency_mean_us;
  check "p50" 250. s.latency_p50_us;
  check "p90" 250. s.latency_p90_us;
  check "p99" 250. s.latency_p99_us;
  check "max" 250. s.latency_max_us

(* 1..1000 microseconds, in a shuffled order (percentiles must not depend
   on arrival order): rank q/100 * 999 interpolates to
   p50 = 500.5, p90 = 900.1, p99 = 990.01. *)
let test_known_sequence () =
  let m = Serve.Metrics.create () in
  let order = Array.init 1000 (fun i -> i + 1) in
  Sdfgen.Rng.shuffle (Sdfgen.Rng.create 42) order;
  Array.iter
    (fun i -> Serve.Metrics.record m ~cmd:"x" ~latency_s:(float_of_int i *. 1e-6))
    order;
  let s = Serve.Metrics.snapshot m in
  Alcotest.(check int) "all recorded" 1000 s.latency_samples;
  check "mean" 500.5 s.latency_mean_us;
  check "p50" 500.5 s.latency_p50_us;
  check "p90" 900.1 s.latency_p90_us;
  check "p99" 990.01 s.latency_p99_us;
  check "max" 1000. s.latency_max_us

(* Overflow the 4096-entry reservoir with 5000 ascending samples: the ring
   keeps the most recent 4096 (905..5000 us), so percentiles shift up while
   mean, max and the sample counter still cover all 5000. *)
let test_reservoir_cap () =
  let m = Serve.Metrics.create () in
  for i = 1 to 5000 do
    Serve.Metrics.record m ~cmd:"x" ~latency_s:(float_of_int i *. 1e-6)
  done;
  let s = Serve.Metrics.snapshot m in
  Alcotest.(check int) "counter is total, not ring size" 5000 s.latency_samples;
  check "mean covers everything" 2500.5 s.latency_mean_us;
  check "max survives eviction" 5000. s.latency_max_us;
  (* Ring holds 905..5000: p50 rank = 0.5 * 4095 = 2047.5 between 2952 and
     2953. *)
  check "p50 over the retained window" 2952.5 s.latency_p50_us;
  (* p99 rank = 0.99 * 4095 = 4054.05 between 4959 and 4960. *)
  check "p99 over the retained window" 4959.05 s.latency_p99_us

let suite =
  [
    Alcotest.test_case "empty snapshot" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "1..1000 pins p50/p90/p99" `Quick test_known_sequence;
    Alcotest.test_case "reservoir cap" `Quick test_reservoir_cap;
  ]
