(* The serve JSON codec: printer/parser round-trip with bit-for-bit number
   equality, totality of the parser on arbitrary and on corrupted bytes, and
   the strictness corners (escapes, surrogate pairs, depth limit, trailing
   bytes, raw control characters). *)

open QCheck2
module Json = Serve.Json

(* Structural equality with bitwise float comparison: the codec promises
   that cached estimates reparse to the identical IEEE double, and OCaml's
   polymorphic (=) would paper over -0. vs 0. *)
let rec json_eq a b =
  match (a, b) with
  | Json.Num x, Json.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Json.Arr xs, Json.Arr ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && json_eq v v')
           xs ys
  | (Json.Null | Json.Bool _ | Json.Str _), _ -> a = b
  | _ -> false

let finite_float =
  let open Gen in
  map
    (fun f -> if Float.is_finite f then f else 0.)
    (oneof
       [
         float;
         map float_of_int (int_range (-1_000_000) 1_000_000);
         oneofl
           [
             0.; -0.; 1.; -1.; 0.1; -0.1; 1e-300; 4.94e-324;
             1.7976931348623157e308; 1e15; 1e15 -. 1.; Float.pi;
           ];
       ])

(* Arbitrary-byte strings (not just printable): the escaper must handle
   control characters and non-UTF-8 bytes. *)
let byte_string = Gen.(string_size ~gen:char (int_bound 20))

let json_gen =
  let open Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun x -> Json.Num x) finite_float;
        map (fun s -> Json.Str s) byte_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map
                   (fun xs -> Json.Arr xs)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4) (pair byte_string (self (n / 2))))
               );
             ])

let prop_roundtrip =
  Fixtures.qcheck_case ~count:500 "of_string inverts to_string (bit-for-bit)"
    json_gen (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> json_eq j j'
      | Error e -> Test.fail_reportf "reparse failed: %s" e)

let prop_total_on_garbage =
  Fixtures.qcheck_case ~count:1000 "of_string never raises on arbitrary bytes"
    Gen.(string_size ~gen:char (int_bound 60))
    (fun s ->
      match Json.of_string s with Ok _ -> true | Error _ -> true)

(* Corrupting one byte of a valid document must yield Ok or Error — never an
   exception — and any Ok must still print. *)
let prop_total_on_corruption =
  Fixtures.qcheck_case ~count:500 "of_string survives single-byte corruption"
    Gen.(triple json_gen small_nat char)
    (fun (j, i, c) ->
      let s = Bytes.of_string (Json.to_string j) in
      Bytes.set s (i mod Bytes.length s) c;
      match Json.of_string (Bytes.to_string s) with
      | Ok v ->
          ignore (Json.to_string v : string);
          true
      | Error _ -> true
      | exception Invalid_argument _ ->
          (* The corrupted document may parse to a NaN?  It cannot: JSON has
             no NaN literal; to_string must accept every parsed value. *)
          false)

let check_parse msg expected s =
  match Json.of_string s with
  | Ok v ->
      if not (json_eq expected v) then
        Alcotest.failf "%s: parsed %s" msg (Json.to_string v)
  | Error e -> Alcotest.failf "%s: %s" msg e

let check_error msg s =
  match Json.of_string s with
  | Ok v -> Alcotest.failf "%s: unexpectedly parsed %s" msg (Json.to_string v)
  | Error _ -> ()

let test_escapes () =
  check_parse "standard escapes"
    (Json.Str "a\nb\tA\\ \"/\b\012\r")
    {|"a\nb\tA\\ \"\/\b\f\r"|};
  check_parse "\\u BMP escape" (Json.Str "A\xc3\xa9") {|"Aé"|};
  check_parse "surrogate pair" (Json.Str "\xf0\x9f\x98\x80") {|"😀"|};
  check_error "unpaired high surrogate" {|"\ud83d"|};
  check_error "unpaired low surrogate" {|"\ude00"|};
  check_error "bad escape" {|"\q"|};
  check_error "raw control character" "\"a\nb\"";
  check_error "truncated \\u" {|"\u00|}

let test_strictness () =
  check_parse "surrounding whitespace" (Json.Num 42.) " 42 ";
  check_error "trailing bytes" "1 2";
  check_error "empty input" "";
  check_error "bare minus" "-";
  check_error "overflowing number" "1e999";
  check_error "leading plus" "+1";
  check_error "unterminated array" "[1, 2";
  check_error "unterminated object" {|{"a": 1|};
  check_error "lone closing bracket" "]";
  (match Json.of_string "nul" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated keyword parsed");
  (* Offsets in messages. *)
  match Json.of_string "[1, x]" with
  | Error e ->
      if not (Fixtures.contains ~affix:"offset" e) then
        Alcotest.failf "no offset in error: %s" e
  | Ok _ -> Alcotest.fail "parsed [1, x]"

let test_depth_limit () =
  let deep n = String.make n '[' ^ String.make n ']' in
  check_parse "nested arrays below the limit"
    (Json.Arr [ Json.Arr [ Json.Arr [] ] ])
    (deep 3);
  (match Json.of_string ~max_depth:8 (deep 10) with
  | Error e ->
      if not (Fixtures.contains ~affix:"deep" e) then
        Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "parsed past max_depth");
  (* The default limit must reject adversarial nesting without touching the
     OS stack. *)
  match Json.of_string (String.make 100_000 '[') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed unterminated deep nesting"

let test_numbers () =
  List.iter
    (fun x ->
      match Json.of_string (Json.to_string (Json.Num x)) with
      | Ok (Json.Num y) ->
          if Int64.bits_of_float x <> Int64.bits_of_float y then
            Alcotest.failf "%h reparsed to %h" x y
      | Ok v -> Alcotest.failf "%h reparsed to %s" x (Json.to_string v)
      | Error e -> Alcotest.failf "%h: %s" x e)
    [
      0.; -0.; 0.1; 2. /. 3.; 1e15 -. 1.; 1e15; 1e300; 4.94e-324;
      Float.max_float; Float.min_float; 1. /. 3.; 123456789.123456789;
    ];
  (try
     ignore (Json.to_string (Json.Num Float.nan) : string);
     Alcotest.fail "NaN printed"
   with Invalid_argument _ -> ());
  try
    ignore (Json.to_string (Json.Num Float.infinity) : string);
    Alcotest.fail "infinity printed"
  with Invalid_argument _ -> ()

let test_accessors () =
  let obj = Json.Obj [ ("a", Json.Num 3.); ("b", Json.Str "x") ] in
  (match Json.member "a" obj with
  | Some (Json.Num 3.) -> ()
  | _ -> Alcotest.fail "member a");
  (match Json.member "missing" obj with
  | None -> ()
  | Some _ -> Alcotest.fail "member missing");
  (match Json.get_int (Json.Num 3.) with
  | Some 3 -> ()
  | _ -> Alcotest.fail "get_int 3");
  (match Json.get_int (Json.Num 3.5) with
  | None -> ()
  | Some _ -> Alcotest.fail "get_int 3.5");
  match Json.get_str (Json.Num 3.) with
  | None -> ()
  | Some _ -> Alcotest.fail "get_str on Num"

let suite =
  [
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "strictness" `Quick test_strictness;
    Alcotest.test_case "depth limit" `Quick test_depth_limit;
    Alcotest.test_case "number round-trip" `Quick test_numbers;
    Alcotest.test_case "accessors" `Quick test_accessors;
    prop_roundtrip;
    prop_total_on_garbage;
    prop_total_on_corruption;
  ]
