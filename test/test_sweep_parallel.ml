(* The parallel sweep must be indistinguishable from the sequential one:
   identical observations (periods compared with exact float equality),
   identical inaccuracy summaries, and a thread-safe monotone progress
   callback.  Exercised on a small fixed-seed workload (4 apps, short
   horizon) in both the constant-time and the stochastic (spread > 0)
   regimes. *)

let small_workload ?spread () =
  Exp.Workload.make ~seed:7 ~num_apps:4 ~procs:6
    ~params:
      {
        Sdfgen.Generator.default_params with
        actors_min = 4;
        actors_max = 6;
        exec_min = 2;
        exec_max = 20;
      }
    ?spread ()

let check_same_observation i (a : Exp.Sweep.observation) (b : Exp.Sweep.observation) =
  let ctx fmt = Printf.sprintf ("observation %d: " ^^ fmt) i in
  Alcotest.(check int) (ctx "usecase") a.usecase b.usecase;
  Alcotest.(check int) (ctx "app_index") a.app_index b.app_index;
  (* Exact equality, not a tolerance: the parallel path must run the very
     same float operations in the very same order. *)
  let exactly msg x y =
    if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then
      Alcotest.failf "%s: %h <> %h" msg x y
  in
  exactly (ctx "simulated_period") a.simulated_period b.simulated_period;
  exactly (ctx "simulated_worst") a.simulated_worst b.simulated_worst;
  Alcotest.(check int)
    (ctx "estimator count")
    (List.length a.estimated_periods)
    (List.length b.estimated_periods);
  List.iter2
    (fun (ea, pa) (eb, pb) ->
      Alcotest.(check string)
        (ctx "estimator order")
        (Contention.Analysis.estimator_name ea)
        (Contention.Analysis.estimator_name eb);
      exactly (ctx "estimated period") pa pb)
    a.estimated_periods b.estimated_periods

let check_equal_sweeps (seq : Exp.Sweep.t) (par : Exp.Sweep.t) =
  Alcotest.(check int) "observation count"
    (List.length seq.observations)
    (List.length par.observations);
  List.iteri
    (fun i (a, b) -> check_same_observation i a b)
    (List.combine seq.observations par.observations);
  List.iter
    (fun est ->
      let a = Exp.Sweep.inaccuracy_period seq est
      and b = Exp.Sweep.inaccuracy_period par est in
      if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
        Alcotest.failf "inaccuracy_period (%s): %h <> %h"
          (Contention.Analysis.estimator_name est)
          a b)
    seq.estimators

let test_parallel_equals_sequential () =
  let w = small_workload () in
  let seq = Exp.Sweep.run ~horizon:10_000. ~jobs:1 w in
  let par = Exp.Sweep.run ~horizon:10_000. ~jobs:4 w in
  check_equal_sweeps seq par

let test_parallel_equals_sequential_stochastic () =
  (* With spread > 0 every firing draws from a use-case-seeded RNG; the
     draws must not depend on domain scheduling. *)
  let w = small_workload ~spread:0.4 () in
  let seq = Exp.Sweep.run ~horizon:10_000. ~jobs:1 w in
  let par = Exp.Sweep.run ~horizon:10_000. ~jobs:4 w in
  check_equal_sweeps seq par

let test_stochastic_differs_from_constant () =
  (* Sanity: the spread path actually changes the simulation (otherwise the
     stochastic determinism test above would be vacuous). *)
  let uc = [ Contention.Usecase.of_list [ 0; 1; 2; 3 ] ] in
  let constant = Exp.Sweep.run ~horizon:10_000. ~usecases:uc ~jobs:1 (small_workload ()) in
  let spread =
    Exp.Sweep.run ~horizon:10_000. ~usecases:uc ~jobs:1 (small_workload ~spread:0.4 ())
  in
  let periods (s : Exp.Sweep.t) =
    List.map (fun (o : Exp.Sweep.observation) -> o.simulated_period) s.observations
  in
  Alcotest.(check bool) "spread changes simulated periods" true
    (periods constant <> periods spread)

let test_progress_monotone_parallel () =
  let w = small_workload () in
  let seen = ref [] in
  let sweep =
    Exp.Sweep.run ~horizon:5_000. ~jobs:4
      ~progress:(fun done_ total -> seen := (done_, total) :: !seen)
      w
  in
  let calls = List.rev !seen in
  let total = 15 (* 2^4 - 1 use-cases *) in
  Alcotest.(check int) "one call per use-case" total (List.length calls);
  List.iteri
    (fun i (done_, t) ->
      Alcotest.(check int) (Printf.sprintf "call %d strictly increasing" i) (i + 1) done_;
      Alcotest.(check int) "constant total" total t)
    calls;
  Alcotest.(check int) "all use-cases observed" 32 (List.length sweep.observations)

let test_jobs_validation () =
  let w = small_workload () in
  match Exp.Sweep.run ~horizon:1_000. ~jobs:0 w with
  | _ -> Alcotest.fail "jobs = 0 accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "jobs=4 equals jobs=1 (constant times)" `Slow
      test_parallel_equals_sequential;
    Alcotest.test_case "jobs=4 equals jobs=1 (stochastic times)" `Slow
      test_parallel_equals_sequential_stochastic;
    Alcotest.test_case "spread changes the simulation" `Quick
      test_stochastic_differs_from_constant;
    Alcotest.test_case "progress is monotone under domains" `Quick
      test_progress_monotone_parallel;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
  ]
