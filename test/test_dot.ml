(* DOT export: the format is consumed by Graphviz in documentation builds,
   so the exact bytes are pinned on a fixed fixture — label syntax, escaping
   and token annotations are all load-bearing. *)

let golden_a =
  "digraph \"A\" {\n\
  \  rankdir=LR;\n\
  \  node [shape=circle];\n\
  \  a0 [label=\"a0\\n(100)\"];\n\
  \  a1 [label=\"a1\\n(50)\"];\n\
  \  a2 [label=\"a2\\n(100)\"];\n\
  \  a0 -> a1 [label=\"2/1\"];\n\
  \  a1 -> a2 [label=\"1/2\"];\n\
  \  a2 -> a0 [label=\"1/1 [1]\"];\n\
   }\n"

let test_golden_graph_a () =
  Alcotest.(check string)
    "exact DOT bytes" golden_a
    (Sdf.Dot.to_dot (Fixtures.graph_a ()))

let test_token_label_only_when_present () =
  (* Channels without initial tokens must not carry a token annotation;
     the self-loop fixture has one token and must show it. *)
  let dot = Sdf.Dot.to_dot (Fixtures.single ~tau:7. ()) in
  if not (Fixtures.contains ~affix:"a0 -> a0 [label=\"1/1 [1]\"]" dot) then
    Alcotest.failf "self-loop token missing in %s" dot;
  let dot_a = Sdf.Dot.to_dot (Fixtures.graph_a ()) in
  if Fixtures.contains ~affix:"2/1 [" dot_a then
    Alcotest.fail "token annotation on a token-free channel"

let test_structure_parse_back () =
  (* Sanity parse of our own output: one node line per actor, one edge line
     per channel, braces balanced — enough to catch quoting regressions on
     arbitrary generated graphs, not just the fixture. *)
  let g =
    Sdfgen.Generator.generate
      ~params:
        {
          Sdfgen.Generator.default_params with
          actors_min = 5;
          actors_max = 8;
        }
      (Sdfgen.Rng.create 11) ~name:"odd \"name\""
  in
  let dot = Sdf.Dot.to_dot g in
  let lines = String.split_on_char '\n' dot in
  let count pred = List.length (List.filter pred lines) in
  let is_edge l = Fixtures.contains ~affix:" -> " l in
  let is_node l = Fixtures.contains ~affix:"[label=\"" l && not (is_edge l) in
  Alcotest.(check int) "node lines" (Sdf.Graph.num_actors g) (count is_node);
  Alcotest.(check int) "edge lines" (Sdf.Graph.num_channels g) (count is_edge);
  Alcotest.(check bool) "quoted graph name" true
    (Fixtures.contains ~affix:"digraph \"odd \\\"name\\\"\"" dot);
  (* Actor names inherit the graph name; the quote must be escaped inside
     the label too, or the attribute terminates early. *)
  Alcotest.(check bool) "quoted actor label" true
    (Fixtures.contains ~affix:"[label=\"odd \\\"name\\\"0" dot);
  Alcotest.(check bool) "closing brace" true
    (Fixtures.contains ~affix:"}\n" dot)

let test_write_file () =
  let path = Filename.temp_file "dot_test" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = Fixtures.graph_a () in
      Sdf.Dot.write_file path g;
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file contents = to_dot" (Sdf.Dot.to_dot g) contents)

let suite =
  [
    Alcotest.test_case "golden DOT for Figure 2 graph A" `Quick test_golden_graph_a;
    Alcotest.test_case "token labels only where tokens exist" `Quick
      test_token_label_only_when_present;
    Alcotest.test_case "structural parse-back on a generated graph" `Quick
      test_structure_parse_back;
    Alcotest.test_case "write_file round-trip" `Quick test_write_file;
  ]
