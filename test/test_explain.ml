(* Provenance records (Contention.Explain): bit-identical agreement with
   both the reference estimator path and the prepared/kernel path, sandwich
   bracket orientation per truncation parity, the composability fold
   lineage, a total JSON codec (including the serve-layer wire bridge),
   tamper detection by [verify], estimator-name round-trips, and a golden
   rendering. *)

module A = Contention.Analysis
module E = Contention.Explain

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits what a b =
  if not (same_float a b) then Alcotest.failf "%s: %h <> %h" what a b

let workload () = Exp.Workload.make ~seed:7 ~num_apps:3 ~procs:2 ()

let apps_of w =
  Exp.Workload.analysis_apps w
    (Contention.Usecase.full ~napps:(Exp.Workload.num_apps w))

(* --- bit-identity with the estimator paths --------------------------- *)

let check_against_rows name (ex : E.t) (results : A.estimate list) =
  Alcotest.(check int)
    (name ^ ": app count") (List.length results) (List.length ex.E.apps);
  List.iter2
    (fun (x : E.app) (r : A.estimate) ->
      check_bits (name ^ ": period") r.A.period x.E.x_period;
      check_bits (name ^ ": throughput") (A.throughput r) x.E.x_throughput;
      check_bits (name ^ ": isolation") r.A.for_app.A.isolation_period
        x.E.x_isolation;
      check_bits (name ^ ": factor")
        (r.A.period /. r.A.for_app.A.isolation_period)
        x.E.x_factor;
      Alcotest.(check int)
        (name ^ ": actor count")
        (Array.length r.A.waiting_times)
        (List.length x.E.x_actors);
      List.iteri
        (fun i (a : E.actor) ->
          Alcotest.(check int) (name ^ ": actor index") i a.E.a_index;
          check_bits (name ^ ": wait") r.A.waiting_times.(i) a.E.a_wait;
          check_bits (name ^ ": response") r.A.response_times.(i) a.E.a_response)
        x.E.x_actors)
    ex.E.apps results

let test_agrees_with_estimate () =
  let apps = apps_of (workload ()) in
  let prepared = List.map (fun a -> (a, A.prepare a)) apps in
  List.iter
    (fun est ->
      let name = A.estimator_name est in
      let ex = E.compute est apps in
      Alcotest.(check string) "estimator name" name ex.E.estimator;
      (* Reference path. *)
      check_against_rows (name ^ "/reference") ex (A.estimate est apps);
      (* Kernel path: what the serve daemon actually runs. *)
      check_against_rows (name ^ "/kernel") ex (A.estimate_prepared est prepared))
    A.all_paper_estimators

let test_agrees_with_exact () =
  (* Exact enumerates contender subsets; keep the use-case small. *)
  let apps = apps_of (Exp.Workload.make ~seed:5 ~num_apps:2 ~procs:2 ()) in
  let ex = E.compute A.Exact apps in
  check_against_rows "exact" ex (A.estimate A.Exact apps)

let test_statespace_engine () =
  let apps = apps_of (Exp.Workload.make ~seed:5 ~num_apps:2 ~procs:2 ()) in
  let ex = E.compute ~engine:A.Statespace (A.Order 2) apps in
  Alcotest.(check string) "engine recorded" "statespace" ex.E.engine;
  check_against_rows "statespace" ex
    (A.estimate ~engine:A.Statespace (A.Order 2) apps);
  match E.verify ex apps with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "statespace verify: %s" msg

(* --- sandwich bounds -------------------------------------------------- *)

let test_sandwich () =
  let apps = apps_of (workload ()) in
  List.iter
    (fun m ->
      let ex = E.compute (A.Order m) apps in
      List.iter
        (fun (x : E.app) ->
          List.iter
            (fun (a : E.actor) ->
              match a.E.a_sandwich with
              | None -> Alcotest.fail "Order-m actor lacks a sandwich"
              | Some s ->
                  Alcotest.(check int) "recorded order" m s.E.s_order;
                  (* Even truncations over-estimate: the served wait is the
                     upper end of the bracket; odd ones the lower. *)
                  if m mod 2 = 0 then
                    check_bits "upper bracket is the served wait" a.E.a_wait
                      s.E.s_upper
                  else
                    check_bits "lower bracket is the served wait" a.E.a_wait
                      s.E.s_lower;
                  if s.E.s_lower > s.E.s_upper then
                    Alcotest.failf "inverted bracket: [%g, %g]" s.E.s_lower
                      s.E.s_upper)
            x.E.x_actors)
        ex.E.apps)
    [ 2; 3; 4 ];
  (* Non-truncation estimators carry no sandwich. *)
  List.iter
    (fun est ->
      let ex = E.compute est apps in
      List.iter
        (fun (x : E.app) ->
          List.iter
            (fun (a : E.actor) ->
              if a.E.a_sandwich <> None then
                Alcotest.failf "%s actor carries a sandwich" ex.E.estimator)
            x.E.x_actors)
        ex.E.apps)
    [ A.Worst_case; A.Composability ]

(* --- composability fold lineage -------------------------------------- *)

let test_fold_lineage () =
  let apps = apps_of (workload ()) in
  let ex = E.compute A.Composability apps in
  List.iter
    (fun (x : E.app) ->
      List.iter
        (fun (a : E.actor) ->
          Alcotest.(check int) "one fold step per contender"
            (List.length a.E.a_contenders)
            (List.length a.E.a_fold);
          match List.rev a.E.a_fold with
          | last :: _ ->
              check_bits "final aggregate W is the served wait" a.E.a_wait
                last.E.f_w
          | [] -> check_bits "no contenders, no wait" 0. a.E.a_wait)
        x.E.x_actors)
    ex.E.apps;
  (* Other estimators fold nothing. *)
  let ex = E.compute (A.Order 2) apps in
  List.iter
    (fun (x : E.app) ->
      List.iter
        (fun (a : E.actor) ->
          if a.E.a_fold <> [] then Alcotest.fail "order-2 actor has a fold")
        x.E.x_actors)
    ex.E.apps

(* --- JSON codec -------------------------------------------------------- *)

let test_codec_roundtrip () =
  let apps = apps_of (workload ()) in
  List.iter
    (fun est ->
      let ex = E.compute est apps in
      match E.of_json (E.to_json ex) with
      | Error msg -> Alcotest.failf "decode failed: %s" msg
      | Ok ex' ->
          if compare ex ex' <> 0 then
            Alcotest.failf "%s: of_json (to_json t) <> t" ex.E.estimator)
    (A.Exact :: A.all_paper_estimators)

let test_codec_total () =
  List.iter
    (fun doc ->
      match E.of_json doc with
      | Error (_ : string) -> ()
      | Ok _ -> Alcotest.fail "malformed document accepted")
    [
      E.Null;
      E.Num 1.;
      E.Str "explain";
      E.Arr [];
      E.Obj [];
      E.Obj [ ("estimator", E.Num 3.) ];
      E.Obj
        [
          ("estimator", E.Str "second-order");
          ("engine", E.Str "mcm");
          ("usecase", E.Arr []);
          ("apps", E.Str "nope");
        ];
    ]

let test_wire_bridge () =
  (* Through the serve layer: core json -> wire json -> string -> back. *)
  let apps = apps_of (workload ()) in
  let ex = E.compute (A.Order 2) apps in
  let line = Serve.Json.to_string (Serve.Protocol.explain_reply_to_json ex) in
  match
    Result.bind (Serve.Json.of_string line) Serve.Protocol.explain_reply_of_json
  with
  | Error msg -> Alcotest.failf "wire round-trip: %s" msg
  | Ok ex' ->
      if compare ex ex' <> 0 then
        Alcotest.fail "wire round-trip is not bit-exact"

(* --- verify ----------------------------------------------------------- *)

let test_verify () =
  let apps = apps_of (workload ()) in
  List.iter
    (fun est ->
      let ex = E.compute est apps in
      match E.verify ex apps with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "verify (%s): %s" (A.estimator_name est) msg)
    (A.Exact :: A.all_paper_estimators)

let test_verify_detects_tampering () =
  let apps = apps_of (workload ()) in
  let ex = E.compute (A.Order 2) apps in
  let tamper_wait (ex : E.t) =
    {
      ex with
      E.apps =
        List.map
          (fun (x : E.app) ->
            {
              x with
              E.x_actors =
                List.map
                  (fun (a : E.actor) ->
                    { a with E.a_wait = a.E.a_wait +. 1e-9 })
                  x.E.x_actors;
            })
          ex.E.apps;
    }
  and tamper_period (ex : E.t) =
    {
      ex with
      E.apps =
        List.map
          (fun (x : E.app) -> { x with E.x_period = x.E.x_period *. (1. +. 1e-12) })
          ex.E.apps;
    }
  in
  List.iter
    (fun tamper ->
      match E.verify (tamper ex) apps with
      | Ok () -> Alcotest.fail "tampered record verified"
      | Error (_ : string) -> ())
    [ tamper_wait; tamper_period ]

(* --- estimator names --------------------------------------------------- *)

let test_estimator_names () =
  List.iter
    (fun est ->
      match E.estimator_of_name (A.estimator_name est) with
      | Ok est' when est' = est -> ()
      | Ok _ -> Alcotest.failf "%s parsed to a different estimator"
                  (A.estimator_name est)
      | Error msg -> Alcotest.failf "%s rejected: %s" (A.estimator_name est) msg)
    [ A.Worst_case; A.Order 2; A.Order 4; A.Order 7; A.Composability; A.Exact ];
  List.iter
    (fun bad ->
      match E.estimator_of_name bad with
      | Error (_ : string) -> ()
      | Ok _ -> Alcotest.failf "%S accepted" bad)
    [ ""; "o2"; "order-1"; "order-0"; "order-x"; "second order"; "EXACT" ]

(* --- golden rendering -------------------------------------------------- *)

let test_render_golden () =
  let apps = apps_of (Exp.Workload.make ~seed:3 ~num_apps:2 ~procs:2 ()) in
  let ex = E.compute (A.Order 2) apps in
  let expected =
    String.concat "\n"
          [
            "use-case {A,B}  estimator second-order  engine mcm";
            "";
            "application A: isolation 538, period 1150.87, contention factor 2.13917, throughput 0.000868907";
            "| Actor | Proc | Exec |          P |   Mu |    Wait | Response | Err bound |                          Contenders |";
            "|-------|------|------|------------|------|---------|----------|-----------|-------------------------------------|";
            "| 0 a0  |    0 |   14 |  0.0780669 |    7 | 27.6157 |  41.6157 |   1.81447 | B/8+B/6+B/4+B/2+B/0+A/8+A/6+A/4+A/2 |";
            "| 1 a1  |    1 |   25 |  0.0464684 | 12.5 | 65.1489 |  90.1489 |   7.28941 | B/9+B/7+B/5+B/3+B/1+A/9+A/7+A/5+A/3 |";
            "| 2 a2  |    0 |   87 |    0.16171 | 43.5 | 17.9855 |  104.985 |   1.00183 | B/8+B/6+B/4+B/2+B/0+A/8+A/6+A/4+A/0 |";
            "| 3 a3  |    1 |    5 | 0.00929368 |  2.5 | 66.8638 |  71.8638 |   8.01451 | B/9+B/7+B/5+B/3+B/1+A/9+A/7+A/5+A/1 |";
            "| 4 a4  |    0 |   49 |  0.0910781 | 24.5 | 25.0787 |  74.0787 |    1.5811 | B/8+B/6+B/4+B/2+B/0+A/8+A/6+A/2+A/0 |";
            "| 5 a5  |    1 |   19 |   0.070632 |  9.5 | 64.5045 |  83.5045 |   6.91961 | B/9+B/7+B/5+B/3+B/1+A/9+A/7+A/3+A/1 |";
            "| 6 a6  |    0 |   36 |  0.0669145 |   18 | 26.7638 |  62.7638 |    1.7911 | B/8+B/6+B/4+B/2+B/0+A/8+A/4+A/2+A/0 |";
            "| 7 a7  |    1 |   74 |   0.275093 |   37 |  46.625 |  120.625 |   3.62318 | B/9+B/7+B/5+B/3+B/1+A/9+A/5+A/3+A/1 |";
            "| 8 a8  |    0 |   21 |     0.1171 | 10.5 | 26.2833 |  47.2833 |   1.57952 | B/8+B/6+B/4+B/2+B/0+A/6+A/4+A/2+A/0 |";
            "| 9 a9  |    1 |   39 |   0.144981 | 19.5 | 59.5973 |  98.5973 |   5.57579 | B/9+B/7+B/5+B/3+B/1+A/7+A/5+A/3+A/1 |";
            "";
            "application B: isolation 508, period 1008.83, contention factor 1.98589, throughput 0.000991247";
            "| Actor | Proc | Exec |         P |   Mu |    Wait | Response | Err bound |                          Contenders |";
            "|-------|------|------|-----------|------|---------|----------|-----------|-------------------------------------|";
            "| 0 b0  |    0 |    9 | 0.0177165 |  4.5 | 28.8936 |  37.8936 |   2.18766 | B/8+B/6+B/4+B/2+A/8+A/6+A/4+A/2+A/0 |";
            "| 1 b1  |    1 |   62 |  0.122047 |   31 | 58.4921 |  120.492 |   5.64492 | B/9+B/7+B/5+B/3+A/9+A/7+A/5+A/3+A/1 |";
            "| 2 b2  |    0 |   18 | 0.0354331 |    9 | 28.3606 |  46.3606 |   2.05592 | B/8+B/6+B/4+B/0+A/8+A/6+A/4+A/2+A/0 |";
            "| 3 b3  |    1 |   48 |  0.188976 |   24 | 56.1842 |  104.184 |   4.88113 | B/9+B/7+B/5+B/1+A/9+A/7+A/5+A/3+A/1 |";
            "| 4 b4  |    0 |   21 | 0.0826772 | 10.5 | 27.1085 |  48.1085 |   1.75849 | B/8+B/6+B/2+B/0+A/8+A/6+A/4+A/2+A/0 |";
            "| 5 b5  |    1 |   43 |  0.169291 | 21.5 | 57.8959 |  100.896 |   5.19615 | B/9+B/7+B/3+B/1+A/9+A/7+A/5+A/3+A/1 |";
            "| 6 b6  |    0 |   32 |  0.188976 |   16 | 23.2537 |  55.2537 |    1.2174 | B/8+B/4+B/2+B/0+A/8+A/6+A/4+A/2+A/0 |";
            "| 7 b7  |    1 |   89 |  0.350394 | 44.5 | 38.4077 |  127.408 |   2.86377 | B/9+B/5+B/3+B/1+A/9+A/7+A/5+A/3+A/1 |";
            "| 8 b8  |    0 |   35 |  0.206693 | 17.5 | 22.3474 |  57.3474 |   1.14023 | B/6+B/4+B/2+B/0+A/8+A/6+A/4+A/2+A/0 |";
            "| 9 b9  |    1 |   14 | 0.0551181 |    7 | 65.2953 |  79.2953 |   7.20955 | B/7+B/5+B/3+B/1+A/9+A/7+A/5+A/3+A/1 |";
            "";
          ]
  in
  Alcotest.(check string) "rendered explanation" expected (E.render ex)

let suite =
  [
    Alcotest.test_case "agrees with estimate (both paths)" `Quick
      test_agrees_with_estimate;
    Alcotest.test_case "agrees with exact" `Quick test_agrees_with_exact;
    Alcotest.test_case "statespace engine" `Quick test_statespace_engine;
    Alcotest.test_case "sandwich brackets" `Quick test_sandwich;
    Alcotest.test_case "composability fold lineage" `Quick test_fold_lineage;
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec is total" `Quick test_codec_total;
    Alcotest.test_case "wire bridge round-trip" `Quick test_wire_bridge;
    Alcotest.test_case "verify reproduces" `Quick test_verify;
    Alcotest.test_case "verify detects tampering" `Quick
      test_verify_detects_tampering;
    Alcotest.test_case "estimator names" `Quick test_estimator_names;
    Alcotest.test_case "render golden" `Quick test_render_golden;
  ]
