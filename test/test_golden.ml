(* Golden regression pin for the Table-1-style numbers of a fixed-seed
   4-app sweep.  The values below were produced by this very code at the
   time the parallel sweep was introduced; any later performance work
   (parallelism, caching, kernel rewrites) must reproduce them to 1e-9 —
   the sweep is deterministic, so a drift means the estimator algebra or
   the simulator semantics changed, not just the schedule. *)

let golden_workload () =
  Exp.Workload.make ~seed:7 ~num_apps:4 ~procs:6
    ~params:
      {
        Sdfgen.Generator.default_params with
        actors_min = 4;
        actors_max = 6;
        exec_min = 2;
        exec_max = 20;
      }
    ()

(* (estimator, inaccuracy_period %, inaccuracy_throughput %) *)
let golden : (Contention.Analysis.estimator * float * float) list =
  [
    (Contention.Analysis.Worst_case, 91.736779427545059, 42.044833021279665);
    (Contention.Analysis.Order 4, 6.6365505367169462, 6.8657367878937858);
    (Contention.Analysis.Order 2, 6.6511314322944148, 6.873673014153014);
    (Contention.Analysis.Composability, 6.6502160641490553, 6.8723201748649485);
  ]

let golden_isolation_periods = [| 66.; 67.; 66.; 118. |]

let check msg expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %.17g, got %.17g (drift %.3g)" msg expected actual
      (actual -. expected)

let test_golden_sweep () =
  let w = golden_workload () in
  Array.iteri
    (fun i p -> check (Printf.sprintf "isolation period %d" i) golden_isolation_periods.(i) p)
    (Exp.Workload.isolation_periods w);
  let s = Exp.Sweep.run ~horizon:20_000. w in
  List.iter
    (fun (est, period_pct, throughput_pct) ->
      let name = Contention.Analysis.estimator_name est in
      check (name ^ " period inaccuracy") period_pct (Exp.Sweep.inaccuracy_period s est);
      check
        (name ^ " throughput inaccuracy")
        throughput_pct
        (Exp.Sweep.inaccuracy_throughput s est))
    golden

let suite = [ Alcotest.test_case "fixed-seed sweep inaccuracies" `Slow test_golden_sweep ]
