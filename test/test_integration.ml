(* Cross-module integration tests: analysis estimates versus simulated
   behaviour on constructed scenarios where the truth is known. *)

open Contention

(* A "ticker" application is a two-actor ring: a worker (tau 5, mapped on the
   shared processor 0) and a pacer (tau 5, on a private processor), one token
   on the feedback edge.  Isolation period = 10, so the worker occupies the
   shared node with P = 1/2 and mu = 2.5.  With two tickers the theory is
   exactly computable: probabilistic wait = mu * P = 1.25, estimated period
   11.25; worst-case wait 5, period 15; the simulation interleaves perfectly
   and keeps period 10. *)
let ticker name ~pacer_proc =
  let g =
    Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  (g, [| 0; pacer_proc |])

let test_tickers_analysis () =
  let gx, mx = ticker "X" ~pacer_proc:1 and gy, my = ticker "Y" ~pacer_proc:2 in
  Fixtures.check_float "isolation" 10. (Sdf.Statespace.period_exn gx);
  let x = Analysis.app gx ~mapping:mx and y = Analysis.app gy ~mapping:my in
  (match Analysis.estimate Analysis.Exact [ x; y ] with
  | [ rx; ry ] ->
      Fixtures.check_float "wait" 1.25 rx.Analysis.waiting_times.(0);
      Fixtures.check_float "period" 11.25 rx.Analysis.period;
      Fixtures.check_float "symmetric" 11.25 ry.Analysis.period
  | _ -> Alcotest.fail "arity");
  match Analysis.estimate Analysis.Worst_case [ x; y ] with
  | [ rx; _ ] -> Fixtures.check_float "wc period" 15. rx.Analysis.period
  | _ -> Alcotest.fail "arity"

let test_tickers_simulation_between_bounds () =
  let gx, mx = ticker "X" ~pacer_proc:1 and gy, my = ticker "Y" ~pacer_proc:2 in
  let apps =
    [| { Desim.Engine.graph = gx; mapping = mx };
       { Desim.Engine.graph = gy; mapping = my } |]
  in
  let results, _ = Desim.Engine.run ~horizon:50_000. ~procs:3 apps in
  Array.iter
    (fun (r : Desim.Engine.result) ->
      (* Simulated behaviour must lie between isolation and worst case. *)
      Alcotest.(check bool) "sim >= isolation" true (r.avg_period +. 1e-6 >= 10.);
      Alcotest.(check bool) "sim <= worst case" true (r.avg_period <= 15. +. 1e-6))
    results

(* A saturated node: three tickers' workers on one processor. Total demand
   3 * 5/10 = 1.5 > 1, so the simulated period must stretch to 3 * tau = 15
   regardless of phase. The probabilistic estimate must stay below the worst
   case (20). *)
let test_saturation () =
  let gx, mx = ticker "X" ~pacer_proc:1
  and gy, my = ticker "Y" ~pacer_proc:2
  and gz, mz = ticker "Z" ~pacer_proc:3 in
  let apps =
    [| { Desim.Engine.graph = gx; mapping = mx };
       { Desim.Engine.graph = gy; mapping = my };
       { Desim.Engine.graph = gz; mapping = mz } |]
  in
  let results, _ = Desim.Engine.run ~horizon:60_000. ~procs:4 apps in
  Array.iter
    (fun (r : Desim.Engine.result) ->
      Fixtures.check_float ~eps:1e-2 "saturated period" 15. r.avg_period)
    results;
  let analysis_apps =
    [ Analysis.app gx ~mapping:mx; Analysis.app gy ~mapping:my; Analysis.app gz ~mapping:mz ]
  in
  List.iter
    (fun est ->
      List.iter
        (fun (r : Analysis.estimate) ->
          Alcotest.(check bool)
            (Analysis.estimator_name est ^ " between iso and wc")
            true
            (r.period >= 10. && r.period <= 20.00001))
        (Analysis.estimate est analysis_apps))
    [ Analysis.Order 2; Analysis.Order 4; Analysis.Composability; Analysis.Exact ]

(* Estimates track simulation within the paper's error band on random
   two-application workloads: the probabilistic estimate should usually be
   closer to simulation than the worst-case estimate. We require it on
   average over the generated cases rather than for every single case. *)
let test_probabilistic_beats_worst_case_on_average () =
  let rng = Sdfgen.Rng.create 1234 in
  let params =
    { Sdfgen.Generator.default_params with actors_min = 4; actors_max = 6;
      exec_min = 2; exec_max = 30; extra_channels = 2 }
  in
  let procs = 3 in
  let cases = 15 in
  let err_prob = ref 0. and err_wc = ref 0. in
  for _ = 1 to cases do
    let g1 = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name:"U" in
    let g2 = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name:"V" in
    let a1 = Analysis.app g1 ~mapping:(Mapping.modulo ~procs g1) in
    let a2 = Analysis.app g2 ~mapping:(Mapping.modulo ~procs g2) in
    let sim, _ =
      Desim.Engine.run ~horizon:50_000. ~procs
        [| { Desim.Engine.graph = g1; mapping = a1.Analysis.mapping };
           { Desim.Engine.graph = g2; mapping = a2.Analysis.mapping } |]
    in
    let est estimator =
      List.map (fun (r : Analysis.estimate) -> r.period) (Analysis.estimate estimator [ a1; a2 ])
    in
    let probabilistic = est (Analysis.Order 2) and worst = est Analysis.Worst_case in
    List.iteri
      (fun i simulated ->
        if not (Float.is_nan simulated) then begin
          err_prob := !err_prob +. Float.abs (List.nth probabilistic i -. simulated) /. simulated;
          err_wc := !err_wc +. Float.abs (List.nth worst i -. simulated) /. simulated
        end)
      (Array.to_list (Array.map (fun r -> r.Desim.Engine.avg_period) sim))
  done;
  Alcotest.(check bool) "probabilistic closer on average" true (!err_prob < !err_wc)

(* Admission control agrees with offline analysis for two applications. *)
let test_admission_consistent_with_analysis () =
  let a = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |] in
  let offline =
    match Analysis.estimate Analysis.Composability [ a; b ] with
    | [ ra; _ ] -> ra.Analysis.period
    | _ -> Alcotest.fail "arity"
  in
  let ctl = Admission.create ~procs:3 () in
  ignore (Admission.try_admit ctl a Admission.best_effort);
  ignore (Admission.try_admit ctl b Admission.best_effort);
  Fixtures.check_float ~eps:1e-6 "online = offline" offline
    (Admission.estimated_period ctl "A")

(* The DOT export round-trips basic structure for generated graphs. *)
let test_dot_export () =
  let g = Fixtures.graph_a () in
  let dot = Sdf.Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (Fixtures.contains ~affix:"digraph" dot);
  Array.iter
    (fun (a : Sdf.Graph.actor) ->
      Alcotest.(check bool) "actor present" true (Fixtures.contains ~affix:a.name dot))
    g.actors;
  let path = Filename.temp_file "sdf" ".dot" in
  Sdf.Dot.write_file path g;
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" dot contents

let suite =
  [
    Alcotest.test_case "tickers analysis" `Quick test_tickers_analysis;
    Alcotest.test_case "tickers simulation bounds" `Quick test_tickers_simulation_between_bounds;
    Alcotest.test_case "saturated node" `Quick test_saturation;
    Alcotest.test_case "probabilistic beats worst case" `Slow
      test_probabilistic_beats_worst_case_on_average;
    Alcotest.test_case "admission = offline analysis" `Quick
      test_admission_consistent_with_analysis;
    Alcotest.test_case "dot export" `Quick test_dot_export;
  ]
